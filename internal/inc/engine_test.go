package inc_test

import (
	"context"
	"fmt"
	"testing"

	"awam/internal/bench"
	"awam/internal/cache"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/fuzz"
	"awam/internal/inc"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// mustCompile and analyzeWorklist mirror the in-package test helpers;
// this file lives in inc_test so it can use the fuzz generator (fuzz
// now depends on backward, which depends on inc).
func mustCompile(t *testing.T, src string) (*term.Tab, *wam.Module) {
	t.Helper()
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return tab, mod
}

func analyzeWorklist(t *testing.T, src string) (*term.Tab, *core.Result) {
	t.Helper()
	tab, mod := mustCompile(t, src)
	cfg := core.DefaultConfig()
	cfg.Strategy = core.StrategyWorklist
	res, err := core.NewWith(mod, cfg).AnalyzeAllContext(context.Background())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return tab, res
}

func newDirStore(dir string) (*cache.Store, error) {
	return cache.NewStore(0, dir)
}

// scratchMarshal analyzes src from scratch with the plain worklist
// strategy — the reference the incremental engine must match byte for
// byte.
func scratchMarshal(t *testing.T, src string) string {
	t.Helper()
	_, res := analyzeWorklist(t, src)
	return res.Marshal()
}

// runEngine analyzes src through the engine (fresh tab/module each
// call, as the daemon would).
func runEngine(t *testing.T, e *inc.Engine, src string) *inc.Result {
	t.Helper()
	_, mod := mustCompile(t, src)
	res, err := e.AnalyzeAll(context.Background(), mod, core.DefaultConfig())
	if err != nil {
		t.Fatalf("engine analyze: %v", err)
	}
	return res
}

// TestWarmRunByteIdentical: on every benchmark program, a cold engine
// run equals the scratch worklist result, and a fully warm re-run of
// the unchanged program is byte-identical again — with zero predicate
// explorations (everything seeded) and full component reuse.
func TestWarmRunByteIdentical(t *testing.T) {
	for _, prog := range bench.AllPrograms() {
		t.Run(prog.Name, func(t *testing.T) {
			want := scratchMarshal(t, prog.Source)
			e := inc.NewEngine(nil)

			cold := runEngine(t, e, prog.Source)
			if cold.Marshal() != want {
				t.Fatal("cold engine run differs from scratch worklist")
			}
			if cold.WarmSCCs != 0 {
				t.Fatalf("cold run reports %d warm SCCs", cold.WarmSCCs)
			}

			warm := runEngine(t, e, prog.Source)
			if warm.Marshal() != want {
				t.Fatal("warm engine run differs from scratch worklist")
			}
			if warm.WarmSCCs != len(warm.Plan.SCCs) {
				t.Fatalf("warm run served %d/%d SCCs from cache",
					warm.WarmSCCs, len(warm.Plan.SCCs))
			}
			if warm.Metrics.WarmHits == 0 {
				t.Fatal("warm run seeded nothing")
			}
			var runs int64
			for _, n := range warm.Metrics.PredRuns {
				runs += n
			}
			if runs != 0 {
				t.Fatalf("warm run of unchanged program explored predicates: %v",
					warm.Metrics.PredRuns)
			}
		})
	}
}

// TestIncrementalEditDirtyConeOnly edits one predicate between runs and
// checks (a) byte-identity with a from-scratch analysis of the edited
// program and (b) that predicates outside the dirty cone were not
// re-explored — the Metrics.PredRuns proof the issue asks for.
func TestIncrementalEditDirtyConeOnly(t *testing.T) {
	base := `
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
rev([], []).
rev([X|Xs], Ys) :- rev(Xs, Zs), app(Zs, [X], Ys).
len([], zero).
len([_|Xs], s(N)) :- len(Xs, N).
flat(X, Y) :- rev(X, Y).
`
	edited := base + "\nlen(weird, weird).\n"

	e := inc.NewEngine(nil)
	runEngine(t, e, base)
	warm := runEngine(t, e, edited)
	if got, want := warm.Marshal(), scratchMarshal(t, edited); got != want {
		t.Fatalf("incremental result differs from scratch:\n got:\n%s\nwant:\n%s", got, want)
	}

	tab := warm.Result.Tab
	for fn, n := range warm.Metrics.PredRuns {
		if n > 0 {
			switch name := tab.FuncString(fn); name {
			case "len/2":
				// The edited predicate: must re-run.
			default:
				t.Errorf("clean predicate %s re-explored %d times", name, n)
			}
		}
	}
	if warm.Metrics.PredRuns[tabFunc(tab, "len", 2)] == 0 {
		t.Error("edited predicate was not re-explored")
	}
	// app, rev, flat are outside len's cone: all served warm.
	if warm.Metrics.WarmHits == 0 {
		t.Error("no warm hits on the clean cone")
	}
}

func tabFunc(tab *term.Tab, name string, arity int) term.Functor {
	return tab.Func(name, arity)
}

// TestIncrementalEditCallerCone: editing a leaf dirties its callers
// too (their fingerprints cover the cone), so they re-run; unrelated
// predicates stay warm.
func TestIncrementalEditCallerCone(t *testing.T) {
	base := `
leafa(a).
leafb(b).
mid(X) :- leafa(X).
top(X) :- mid(X).
other(X) :- leafb(X).
`
	edited := `
leafa(a).
leafa(c).
leafb(b).
mid(X) :- leafa(X).
top(X) :- mid(X).
other(X) :- leafb(X).
`
	e := inc.NewEngine(nil)
	runEngine(t, e, base)
	warm := runEngine(t, e, edited)
	if got, want := warm.Marshal(), scratchMarshal(t, edited); got != want {
		t.Fatal("incremental result differs from scratch after leaf edit")
	}
	tab := warm.Result.Tab
	dirty := map[string]bool{"leafa/1": true, "mid/1": true, "top/1": true}
	for fn, n := range warm.Metrics.PredRuns {
		if n > 0 && !dirty[tab.FuncString(fn)] {
			t.Errorf("predicate %s outside the dirty cone re-explored", tab.FuncString(fn))
		}
	}
	for name := range dirty {
		found := false
		for fn, n := range warm.Metrics.PredRuns {
			if n > 0 && tab.FuncString(fn) == name {
				found = true
			}
		}
		if !found {
			t.Errorf("dirty predicate %s was not re-explored", name)
		}
	}
}

// TestIncrementalFuzzCorpus is the property test over the generator
// corpus: analyze, append one clause to the first predicate, re-analyze
// warm, and require byte-identity with a from-scratch run of the
// mutated program.
func TestIncrementalFuzzCorpus(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		c := fuzz.Generate(seed, fuzz.DefaultGenConfig())
		mutated, ok := mutateFirstPredicate(c.Source)
		if !ok {
			t.Logf("seed %d: no mutable predicate, skipped", seed)
			continue
		}
		e := inc.NewEngine(nil)
		runEngine(t, e, c.Source)
		warm := runEngine(t, e, mutated)
		if got, want := warm.Marshal(), scratchMarshal(t, mutated); got != want {
			t.Fatalf("seed %d: incremental != scratch after mutation\nsource:\n%s", seed, mutated)
		}
		if warm.Metrics.WarmHits+warm.Metrics.WarmMisses == 0 {
			t.Fatalf("seed %d: warm run never probed the seed table", seed)
		}
	}
}

// mutateFirstPredicate appends a fresh fact for the program's first
// defined predicate — a minimal dirtying edit valid for any program.
func mutateFirstPredicate(src string) (string, bool) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, src)
	if err != nil || len(prog.Clauses) == 0 {
		return "", false
	}
	fn, ok := term.Indicator(prog.Clauses[0].Head)
	if !ok {
		return "", false
	}
	name := tab.Name(fn.Name)
	if fn.Arity == 0 {
		return src + "\n" + name + ".\n", true
	}
	args := ""
	for i := 0; i < fn.Arity; i++ {
		if i > 0 {
			args += ", "
		}
		args += "mutant"
	}
	return fmt.Sprintf("%s\n%s(%s).\n", src, name, args), true
}

// TestEngineDiskPersistence: a brand-new engine over the same cache
// directory serves the whole program warm — the cross-process restart
// story.
func TestEngineDiskPersistence(t *testing.T) {
	prog, _ := bench.ByName("qsort")
	dir := t.TempDir()

	s1, err := newDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runEngine(t, inc.NewEngine(s1), prog.Source)

	s2, err := newDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := runEngine(t, inc.NewEngine(s2), prog.Source)
	if warm.WarmSCCs != len(warm.Plan.SCCs) {
		t.Fatalf("after restart: %d/%d SCCs warm", warm.WarmSCCs, len(warm.Plan.SCCs))
	}
	if warm.Marshal() != scratchMarshal(t, prog.Source) {
		t.Fatal("disk-served warm run differs from scratch")
	}
	if warm.Store.DiskLoads == 0 {
		t.Fatal("no disk loads recorded after restart")
	}
}

// TestEngineConfigIsolation: records produced under one depth bound
// must not warm an analysis under another.
func TestEngineConfigIsolation(t *testing.T) {
	prog, _ := bench.ByName("qsort")
	e := inc.NewEngine(nil)
	_, mod := mustCompile(t, prog.Source)
	if _, err := e.AnalyzeAll(context.Background(), mod, core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	_, mod2 := mustCompile(t, prog.Source)
	cfg := core.DefaultConfig()
	cfg.Depth = 2
	res, err := e.AnalyzeAll(context.Background(), mod2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmSCCs != 0 {
		t.Fatalf("depth-2 run reused %d depth-4 components", res.WarmSCCs)
	}
}
