package inc

import (
	"context"
	"testing"

	"awam/internal/bench"
	"awam/internal/core"
	"awam/internal/specialize"
	"awam/internal/term"
	"awam/internal/wam"
)

// specFor builds the specialized transfer program for mod the way the
// facade does.
func specFor(mod *wam.Module, opts specialize.Options) *specialize.Program {
	plan := Condense(mod, core.Config{})
	comps := make([][]term.Functor, len(plan.SCCs))
	for i, scc := range plan.SCCs {
		comps[i] = scc.Members
	}
	return specialize.Build(mod, comps, specialize.StaticProfile(mod), opts)
}

// TestEngineSpecIsolation pins the fingerprint salting of specialized
// runs: summaries recorded by the generic engine must be a cache miss
// for a specialized run and vice versa (a specializer bug must never be
// masked by generic-era records), and two specializer generations with
// different fusion options must not share records either — while every
// engine generation still reuses its own records fully, and all of them
// produce byte-identical results.
func TestEngineSpecIsolation(t *testing.T) {
	prog, _ := bench.ByName("qsort")
	e := NewEngine(nil)

	run := func(spec *specialize.Program) *Result {
		t.Helper()
		_, mod := mustCompile(t, prog.Source)
		cfg := core.DefaultConfig()
		if spec != nil {
			// Rebuild for this module: the specialization is tied to the
			// module's code addresses and symbol table.
			cfg.Spec = specFor(mod, spec.Opts)
		}
		res, err := e.AnalyzeAll(context.Background(), mod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	full := specFor(mustCompileMod(t, prog.Source), specialize.Options{Fuse: true, PreIntern: true})
	flat := specFor(mustCompileMod(t, prog.Source), specialize.Options{})

	generic := run(nil)
	if generic.WarmSCCs != 0 {
		t.Fatalf("cold generic run reports %d warm SCCs", generic.WarmSCCs)
	}

	// Generic records must not satisfy a specialized run.
	spec1 := run(full)
	if spec1.WarmSCCs != 0 {
		t.Fatalf("specialized run reused %d generic-engine components", spec1.WarmSCCs)
	}
	if spec1.Marshal() != generic.Marshal() {
		t.Fatal("specialized engine result differs from generic")
	}

	// A same-generation re-run is fully warm.
	spec2 := run(full)
	if spec2.WarmSCCs != len(spec2.Plan.SCCs) {
		t.Fatalf("specialized re-run served %d/%d components", spec2.WarmSCCs, len(spec2.Plan.SCCs))
	}

	// A different fusion configuration is a different generation.
	specFlat := run(flat)
	if specFlat.WarmSCCs != 0 {
		t.Fatalf("flatten-only run reused %d full-specialization components", specFlat.WarmSCCs)
	}
	if specFlat.Marshal() != generic.Marshal() {
		t.Fatal("flatten-only engine result differs from generic")
	}

	// And specialized records must not satisfy a generic run: the
	// generic generation's own records are still there, so it is warm —
	// but only via its own salt.
	generic2 := run(nil)
	if generic2.WarmSCCs != len(generic2.Plan.SCCs) {
		t.Fatalf("generic re-run served %d/%d components", generic2.WarmSCCs, len(generic2.Plan.SCCs))
	}
	if generic2.Marshal() != generic.Marshal() {
		t.Fatal("generic re-run result drifted")
	}

	// Reverse direction, on a store that has only specialized records:
	// a generic run must miss them all.
	e2 := NewEngine(nil)
	_, mod := mustCompile(t, prog.Source)
	cfg := core.DefaultConfig()
	cfg.Spec = specFor(mod, specialize.Options{Fuse: true, PreIntern: true})
	if _, err := e2.AnalyzeAll(context.Background(), mod, cfg); err != nil {
		t.Fatal(err)
	}
	_, mod2 := mustCompile(t, prog.Source)
	crossGeneric, err := e2.AnalyzeAll(context.Background(), mod2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if crossGeneric.WarmSCCs != 0 {
		t.Fatalf("generic run reused %d specialized-engine components", crossGeneric.WarmSCCs)
	}
}

// mustCompileMod is mustCompile returning only the module.
func mustCompileMod(t *testing.T, src string) *wam.Module {
	t.Helper()
	_, mod := mustCompile(t, src)
	return mod
}
