package domain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awam/internal/term"
)

// meetSamples is the curated carrier used for the glb-maximality check:
// enough shape variety to exercise every structural rule in meetAsym.
func meetSamples(t *testing.T, tab *term.Tab) []*Term {
	srcs := []string{
		"empty", "var", "[]", "atom", "int", "const", "g", "nv", "any",
		"list(g)", "list(int)", "list(atom)", "list(any)", "list(var)",
		"[g|list(g)]", "[int|list(int)]", "[any|list(any)]", "[any|var]",
		"f(g)", "f(any)", "f(atom, int)", "f(var, g)", "h(g)",
		"[g|[]]", "[g|[g|[]]]", "list(list(g))", "[list(g)|list(list(g))]",
	}
	out := make([]*Term, len(srcs))
	for i, s := range srcs {
		out[i] = absT(t, tab, s)
	}
	return out
}

// TestMeetLowerBound: Meet(a,b) ⊑ a and ⊑ b, and Meet is commutative and
// idempotent — the algebraic contract the backward engine's demand
// combination relies on (DESIGN §3.15).
func TestMeetLowerBound(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(17))
	f := func() bool {
		a := Normalize(genAbs(r, tab, 4))
		b := Normalize(genAbs(r, tab, 4))
		m := Meet(tab, a, b)
		if !Leq(tab, m, a) || !Leq(tab, m, b) {
			t.Logf("meet not lower bound: %s ∧ %s = %s", a.String(tab), b.String(tab), m.String(tab))
			return false
		}
		if !Equal(m, Meet(tab, b, a)) {
			t.Logf("meet not commutative: %s ∧ %s", a.String(tab), b.String(tab))
			return false
		}
		aa := Meet(tab, a, a)
		if !Leq(tab, a, aa) || !Leq(tab, aa, a) {
			t.Logf("meet not idempotent on %s: got %s", a.String(tab), aa.String(tab))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// TestMeetGlbOnSamples: over the curated carrier, every common lower
// bound of a and b is below Meet(a,b) — i.e. within the sample set the
// under-approximation is actually the glb.
func TestMeetGlbOnSamples(t *testing.T) {
	tab := term.NewTab()
	samples := meetSamples(t, tab)
	for _, a := range samples {
		for _, b := range samples {
			m := Meet(tab, a, b)
			if !Leq(tab, m, a) || !Leq(tab, m, b) {
				t.Fatalf("meet not lower bound: %s ∧ %s = %s", a.String(tab), b.String(tab), m.String(tab))
			}
			for _, c := range samples {
				if Leq(tab, c, a) && Leq(tab, c, b) && !Leq(tab, c, m) {
					t.Errorf("meet not maximal: %s ⊑ %s and %s but ⋢ %s ∧ %s = %s",
						c.String(tab), a.String(tab), b.String(tab), a.String(tab), b.String(tab), m.String(tab))
				}
			}
		}
	}
}

func TestMeetCases(t *testing.T) {
	tab := term.NewTab()
	cases := []struct{ a, b, want string }{
		{"any", "g", "g"},
		{"var", "nv", "empty"},
		{"var", "g", "empty"},
		{"atom", "int", "empty"},
		{"atom", "list(g)", "[]"},
		{"const", "list(int)", "[]"},
		{"int", "list(int)", "empty"},
		{"g", "list(any)", "list(g)"},
		{"g", "list(var)", "[]"},
		{"g", "f(any, var)", "empty"},
		{"g", "f(any, int)", "f(g, int)"},
		{"nv", "list(g)", "list(g)"},
		{"list(atom)", "list(int)", "[]"},
		{"list(any)", "list(g)", "list(g)"},
		{"[any|list(any)]", "list(g)", "[g|list(g)]"},
		{"[any|var]", "list(g)", "empty"},
		{"[g|[]]", "[g|[g|[]]]", "empty"},
		{"f(g)", "h(g)", "empty"},
		{"f(atom, any)", "f(int, g)", "empty"},
		{"f(const, any)", "f(atom, g)", "f(atom, g)"},
	}
	for _, c := range cases {
		a, b, want := absT(t, tab, c.a), absT(t, tab, c.b), absT(t, tab, c.want)
		got := Meet(tab, a, b)
		if !Equal(Normalize(got), Normalize(want)) {
			t.Errorf("Meet(%s, %s) = %s, want %s", c.a, c.b, got.String(tab), c.want)
		}
	}
}

func TestMeetPattern(t *testing.T) {
	tab := term.NewTab()
	parse := func(src string) *Pattern {
		p, err := ParseAbs(tab, src)
		if err != nil {
			t.Fatalf("ParseAbs(%q): %v", src, err)
		}
		return p
	}
	p := parse("p(any, g)")
	q := parse("p(nv, any)")
	m := MeetPattern(tab, p, q)
	if m == nil || !m.Equal(parse("p(nv, g)")) {
		t.Errorf("MeetPattern = %s, want p(nv, g)", m.String(tab))
	}
	// Bottom is absorbing.
	if MeetPattern(tab, nil, p) != nil || MeetPattern(tab, p, nil) != nil {
		t.Error("MeetPattern with nil must be nil")
	}
	// An unsatisfiable argument collapses the whole pattern.
	if m := MeetPattern(tab, parse("p(var, any)"), parse("p(g, any)")); m != nil {
		t.Errorf("MeetPattern(var∧g) = %s, want bottom", m.String(tab))
	}
}
