package domain

import (
	"awam/internal/term"
)

// ParseAbsFast parses the exact notation PatternText emits — the form
// every cache record and serialized summary is written in — with a
// hand-rolled scanner instead of the full Prolog term parser. Decoding
// cached summaries is the warm path of the incremental engine, and
// ParseAbs (tokenizer, operator parser, term conversion) dominated it.
//
// Returns ok=false on anything outside that notation; callers fall back
// to ParseAbs, so this parser's accept set only has to be *correct*
// (agree with ParseAbs), never complete. In particular it rejects
// Prolog variables, bare integers outside sh groups, and pathological
// nesting, all of which the fallback still handles.
func ParseAbsFast(tab *term.Tab, src string) (*Pattern, bool) {
	p := absParser{tab: tab, s: src}
	p.ws()
	name, ok := p.name()
	if !ok {
		return nil, false
	}
	var args []*Term
	if p.i < len(p.s) && p.s[p.i] == '(' {
		args, ok = p.args(0)
		if !ok {
			return nil, false
		}
	}
	p.ws()
	if p.i != len(p.s) {
		return nil, false
	}
	return (&Pattern{Fn: p.tab.Func(name, len(args)), Args: args}).Canonical(), true
}

// ParseAbsQuick parses src with the fast scanner, falling back to the
// full ParseAbs for anything outside its accept set. Deserialization
// call sites (summary Unmarshal, cache record decode) use this so the
// notation they accept is unchanged.
func ParseAbsQuick(tab *term.Tab, src string) (*Pattern, error) {
	if p, ok := ParseAbsFast(tab, src); ok {
		return p, nil
	}
	return ParseAbs(tab, src)
}

// absParser scans one pattern. Nesting depth is bounded: beyond it the
// parser gives up and lets ParseAbs decide, so deeply nested hostile
// input (FuzzUnmarshal territory) behaves exactly as it did before this
// fast path existed.
type absParser struct {
	tab *term.Tab
	s   string
	i   int
}

const absMaxDepth = 4096

func (p *absParser) ws() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *absParser) eat(c byte) bool {
	p.ws()
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

// name scans a plain lowercase atom or a quoted one ('it”s' style is
// not emitted by quoteName; only \' escapes are).
func (p *absParser) name() (string, bool) {
	if p.i >= len(p.s) {
		return "", false
	}
	if c := p.s[p.i]; c >= 'a' && c <= 'z' {
		start := p.i
		for p.i < len(p.s) && isPlain(p.s[p.i]) {
			p.i++
		}
		return p.s[start:p.i], true
	}
	if p.s[p.i] != '\'' {
		return "", false
	}
	p.i++
	start := p.i
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case '\'':
			s := p.s[start:p.i]
			p.i++
			return s, true
		case '\\':
			// Escapes force the slow scan that builds the name.
			return p.quotedTail(p.s[start:p.i])
		default:
			p.i++
		}
	}
	return "", false
}

// quotedTail finishes scanning a quoted atom that contains escapes,
// starting from the already-clean prefix. quoteName escapes only the
// quote itself, so \' reads back as ' and any other backslash is
// literal.
func (p *absParser) quotedTail(prefix string) (string, bool) {
	buf := append([]byte(nil), prefix...)
	for p.i < len(p.s) {
		c := p.s[p.i]
		switch {
		case c == '\'':
			p.i++
			return string(buf), true
		case c == '\\' && p.i+1 < len(p.s) && p.s[p.i+1] == '\'':
			buf = append(buf, '\'')
			p.i += 2
		default:
			buf = append(buf, c)
			p.i++
		}
	}
	return "", false
}

func isPlain(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// args parses "(" t ("," t)* ")" — the opening byte is at p.i.
func (p *absParser) args(depth int) ([]*Term, bool) {
	p.i++ // '('
	var out []*Term
	for {
		t, ok := p.term(depth + 1)
		if !ok {
			return nil, false
		}
		out = append(out, t)
		if p.eat(')') {
			return out, true
		}
		if !p.eat(',') {
			return nil, false
		}
	}
}

func (p *absParser) term(depth int) (*Term, bool) {
	if depth > absMaxDepth {
		return nil, false
	}
	p.ws()
	if p.i >= len(p.s) {
		return nil, false
	}
	if p.s[p.i] == '[' {
		p.i++
		if p.eat(']') {
			return leafNil, true
		}
		head, ok := p.term(depth + 1)
		if !ok || !p.eat('|') {
			return nil, false
		}
		tail, ok := p.term(depth + 1)
		if !ok || !p.eat(']') {
			return nil, false
		}
		return MkStructT(p.tab.ConsFunctor(), head, tail), true
	}
	name, ok := p.name()
	if !ok {
		return nil, false
	}
	if p.i < len(p.s) && p.s[p.i] == '(' {
		switch name {
		case "sh":
			// sh(N, T): try the share form; arity or type mismatches
			// fall back so ParseAbs can produce its usual diagnostics.
			save := p.i
			if t, ok := p.share(depth); ok {
				return t, true
			}
			p.i = save
			return nil, false
		case "list":
			save := p.i
			p.i++
			if e, ok := p.term(depth + 1); ok && p.eat(')') {
				return MkListT(e), true
			}
			p.i = save
			return nil, false
		}
		args, ok := p.args(depth)
		if !ok {
			return nil, false
		}
		return MkStructT(p.tab.Func(name, len(args)), args...), true
	}
	return p.leaf(name)
}

// share parses the "(N, T)" tail of an sh wrapper; the share group is
// copied onto the inner term exactly as ParseAbs does.
func (p *absParser) share(depth int) (*Term, bool) {
	p.i++ // '('
	p.ws()
	start := p.i
	for p.i < len(p.s) && p.s[p.i] >= '0' && p.s[p.i] <= '9' {
		p.i++
	}
	if p.i == start {
		return nil, false
	}
	n := 0
	for _, c := range []byte(p.s[start:p.i]) {
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return nil, false
		}
	}
	if !p.eat(',') {
		return nil, false
	}
	inner, ok := p.term(depth + 1)
	if !ok || !p.eat(')') {
		return nil, false
	}
	out := *inner
	out.Share = n
	return &out, true
}

// Shared leaf nodes: the decoded volume is leaf-dominated, and Term
// trees are immutable once built (every rewrite in the domain copies
// the node first), so one node per kind can serve every occurrence.
// Wrappers that attach a share group (sh parsing, abstraction) copy
// before writing, so the singletons never gain a Share.
var (
	leafAny   = &Term{Kind: Any}
	leafNV    = &Term{Kind: NV}
	leafG     = &Term{Kind: Ground}
	leafConst = &Term{Kind: Const}
	leafAtom  = &Term{Kind: Atom}
	leafInt   = &Term{Kind: Intg}
	leafVar   = &Term{Kind: Var}
	leafEmpty = &Term{Kind: Empty}
	leafNil   = &Term{Kind: Nil}
)

// leaf maps a bare atom to its abstract kind — the same table as
// ParseAbs, including the aliases and the unknown-atom default.
func (p *absParser) leaf(name string) (*Term, bool) {
	switch name {
	case "any":
		return leafAny, true
	case "nv":
		return leafNV, true
	case "g", "ground":
		return leafG, true
	case "const":
		return leafConst, true
	case "atom":
		return leafAtom, true
	case "int", "integer":
		return leafInt, true
	case "var":
		return leafVar, true
	case "empty":
		return leafEmpty, true
	case "[]":
		return leafNil, true
	}
	return leafAtom, true
}
