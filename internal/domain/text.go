package domain

import (
	"fmt"
	"strings"

	"awam/internal/term"
)

// PatternText renders a pattern in the notation ParseAbs accepts, so
// analysis results can be saved to text and reloaded: leaves by name,
// list(T) for list types, [A|B] for cons structures, and sh(N, T)
// wrappers marking share groups (each occurrence carries the full
// subtree, which ParseAbs verifies for consistency).
func PatternText(tab *term.Tab, p *Pattern) string {
	if p == nil {
		return "bottom"
	}
	var b strings.Builder
	b.WriteString(quoteName(tab.Name(p.Fn.Name)))
	if len(p.Args) > 0 {
		b.WriteByte('(')
		for i, a := range p.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeText(&b, tab, a)
		}
		b.WriteByte(')')
	}
	return b.String()
}

func writeText(b *strings.Builder, tab *term.Tab, t *Term) {
	if t.Share != 0 {
		fmt.Fprintf(b, "sh(%d, ", t.Share)
		defer b.WriteByte(')')
	}
	switch t.Kind {
	case Empty:
		b.WriteString("empty")
	case Var:
		b.WriteString("var")
	case Nil:
		b.WriteString("[]")
	case Atom:
		b.WriteString("atom")
	case Intg:
		b.WriteString("int")
	case Const:
		b.WriteString("const")
	case Ground:
		b.WriteString("g")
	case NV:
		b.WriteString("nv")
	case Any:
		b.WriteString("any")
	case List:
		b.WriteString("list(")
		writeText(b, tab, t.Elem)
		b.WriteByte(')')
	case Struct:
		if t.Fn.Name == tab.Dot && t.Fn.Arity == 2 {
			b.WriteByte('[')
			writeText(b, tab, t.Args[0])
			b.WriteByte('|')
			writeText(b, tab, t.Args[1])
			b.WriteByte(']')
			return
		}
		b.WriteString(quoteName(tab.Name(t.Fn.Name)))
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeText(b, tab, a)
		}
		b.WriteByte(')')
	}
}

// quoteName quotes atoms whose spelling would not re-read.
func quoteName(s string) string {
	if s == "" {
		return "''"
	}
	plain := true
	if !(s[0] >= 'a' && s[0] <= 'z') {
		plain = false
	}
	for i := 0; plain && i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			plain = false
		}
	}
	if plain {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
}
