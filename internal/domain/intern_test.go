package domain

import (
	"math/rand"
	"sync"
	"testing"

	"awam/internal/term"
)

// genSharedAbs builds a random abstract term whose open nodes may carry
// share groups drawn from a small alphabet — small enough that
// independently generated patterns collide often, exercising both sides
// of the iff-property below.
func genSharedAbs(r *rand.Rand, tab *term.Tab, depth int) *Term {
	t := genAbs(r, tab, depth)
	var decorate func(t *Term) *Term
	decorate = func(t *Term) *Term {
		c := *t
		if c.Kind.Open() && r.Intn(3) == 0 {
			c.Share = 1 + r.Intn(3)
		}
		switch c.Kind {
		case Struct:
			args := make([]*Term, len(c.Args))
			for i, a := range c.Args {
				args[i] = decorate(a)
			}
			c.Args = args
		case List:
			c.Elem = decorate(c.Elem)
		}
		return &c
	}
	return decorate(t)
}

func genSharedPat(r *rand.Rand, tab *term.Tab) *Pattern {
	fn := tab.Func("p", 2)
	p := &Pattern{Fn: fn, Args: []*Term{genSharedAbs(r, tab, 2), genSharedAbs(r, tab, 2)}}
	switch r.Intn(3) {
	case 0:
		return p
	case 1:
		// Depth-k widened, as the engine produces.
		return WidenPattern(tab, p, 1+r.Intn(3))
	default:
		return p.Canonical()
	}
}

// renameShares maps every share group through an injective renaming —
// Key() and Intern must both be invariant under it.
func renameShares(p *Pattern, shift int) *Pattern {
	var rew func(t *Term) *Term
	rew = func(t *Term) *Term {
		c := *t
		if c.Share != 0 {
			c.Share = c.Share*7 + shift
		}
		switch c.Kind {
		case Struct:
			args := make([]*Term, len(c.Args))
			for i, a := range c.Args {
				args[i] = rew(a)
			}
			c.Args = args
		case List:
			c.Elem = rew(c.Elem)
		}
		return &c
	}
	args := make([]*Term, len(p.Args))
	for i, a := range p.Args {
		args[i] = rew(a)
	}
	return &Pattern{Fn: p.Fn, Args: args}
}

// TestInternIffKey: Intern(p) == Intern(q) exactly when the patterns'
// canonical serializations agree, over randomized patterns including
// share-group renamings and depth-k widenings.
func TestInternIffKey(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(42))
	in := NewInterner()
	for trial := 0; trial < 5000; trial++ {
		p := genSharedPat(r, tab)
		var q *Pattern
		switch trial % 3 {
		case 0:
			q = genSharedPat(r, tab)
		case 1:
			q = renameShares(p, 1+r.Intn(5)) // same key by construction
		default:
			q = WidenPattern(tab, p, 2)
		}
		pid, _ := in.Intern(p)
		qid, _ := in.Intern(q)
		if got, want := pid == qid, p.Key() == q.Key(); got != want {
			t.Fatalf("trial %d: Intern equal=%v but Key equal=%v\np=%s key=%q id=%d\nq=%s key=%q id=%d",
				trial, got, want, p.String(tab), p.Key(), pid, q.String(tab), q.Key(), qid)
		}
		// The canonical representative round-trips to the same identity.
		rep := in.Pattern(pid)
		if rep.Key() != p.Key() {
			t.Fatalf("trial %d: rep key %q != %q", trial, rep.Key(), p.Key())
		}
		if rid, hit := in.Intern(rep); rid != pid || !hit {
			t.Fatalf("trial %d: rep re-intern %d (hit=%v), want %d", trial, rid, hit, pid)
		}
	}
	if pats, terms := in.Size(); pats == 0 || terms == 0 {
		t.Fatalf("interner empty after property run: %d patterns, %d terms", pats, terms)
	}
}

// TestInternBottom: nil is Bottom and stays out of the tables.
func TestInternBottom(t *testing.T) {
	in := NewInterner()
	id, hit := in.Intern(nil)
	if id != BottomID || !hit {
		t.Fatalf("Intern(nil) = %d, %v; want BottomID, true", id, hit)
	}
	if in.Pattern(BottomID) != nil {
		t.Fatal("Pattern(Bottom) not nil")
	}
	if pats, terms := in.Size(); pats != 0 || terms != 0 {
		t.Fatalf("size after bottom: %d patterns, %d terms", pats, terms)
	}
}

// TestInternConcurrent hammers one interner from N goroutines over a
// shared pattern pool (run under -race in CI). Every goroutine must
// observe the same key → ID mapping.
func TestInternConcurrent(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(7))
	pool := make([]*Pattern, 400)
	for i := range pool {
		pool[i] = genSharedPat(r, tab)
	}
	keys := make([]string, len(pool))
	for i, p := range pool {
		keys[i] = p.Key()
	}

	const workers = 8
	in := NewInterner()
	got := make([]map[string]PatternID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := make(map[string]PatternID)
			wr := rand.New(rand.NewSource(int64(w)))
			for round := 0; round < 20; round++ {
				for _, i := range wr.Perm(len(pool)) {
					id, _ := in.Intern(pool[i])
					if prev, ok := seen[keys[i]]; ok && prev != id {
						t.Errorf("worker %d: key %q interned to %d then %d", w, keys[i], prev, id)
						return
					}
					seen[keys[i]] = id
					// Touch the shared rep as the engine would.
					if rep := in.Pattern(id); rep.Key() != keys[i] {
						t.Errorf("worker %d: rep key mismatch for id %d", w, id)
						return
					}
				}
			}
			got[w] = seen
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		for k, id := range got[0] {
			if got[w][k] != id {
				t.Fatalf("worker %d maps %q to %d, worker 0 to %d", w, k, got[w][k], id)
			}
		}
	}
}
