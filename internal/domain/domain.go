// Package domain implements the abstract domain of Section 3 of the
// paper: a lattice of abstract types over Prolog terms used to infer
// mode, type and variable-aliasing information.
//
// The elements are:
//
//	empty (bottom) — the set containing no term
//	var            — all unbound variables
//	nil            — the constant [] (kept distinct so that lub can
//	                 infer parameterized list types, as the paper's
//	                 alpha-list requires)
//	atom           — all atoms
//	integer        — all integers
//	const          — atoms and integers
//	struct(f/n, a1..an) — structures with principal functor f/n
//	alpha-list     — nil or [alpha|alpha-list]
//	ground         — all ground terms
//	nv             — all non-variable terms
//	any (top)      — all terms
//
// A Term is a tree of these elements. Leaves that can be instantiated
// further ("open" leaves: var, any, nv, ground, const, list) carry a
// share group: leaves in the same group denote the same run-time
// instance, which is how patterns keep the paper's "complete aliasing
// information" across predicate boundaries.
package domain

import (
	"fmt"
	"sort"
	"strings"

	"awam/internal/term"
)

// Kind enumerates the abstract type constructors.
type Kind uint8

const (
	// Empty is bottom: no term.
	Empty Kind = iota
	// Var is the set of unbound variables.
	Var
	// Nil is the singleton {[]}.
	Nil
	// Atom is the set of all atoms (including []).
	Atom
	// Intg is the set of all integers.
	Intg
	// Const is atoms plus integers.
	Const
	// Ground is the set of ground terms.
	Ground
	// NV is the set of non-variable terms.
	NV
	// Any is top: every term.
	Any
	// Struct is a structure type struct(f/n, a1..an).
	Struct
	// List is the parameterized list type alpha-list.
	List
)

func (k Kind) String() string {
	switch k {
	case Empty:
		return "empty"
	case Var:
		return "var"
	case Nil:
		return "[]"
	case Atom:
		return "atom"
	case Intg:
		return "int"
	case Const:
		return "const"
	case Ground:
		return "g"
	case NV:
		return "nv"
	case Any:
		return "any"
	case Struct:
		return "struct"
	case List:
		return "list"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Open reports whether a leaf of this kind can be instantiated further
// (and therefore participates in aliasing).
func (k Kind) Open() bool {
	switch k {
	case Var, Any, NV, Ground, Const, List:
		return true
	}
	return false
}

// Term is an abstract term: a node in the type tree.
type Term struct {
	Kind Kind
	Fn   term.Functor // Struct
	Args []*Term      // Struct
	Elem *Term        // List parameter
	// Share is the aliasing group: 0 = unshared, >0 = group id. Only
	// meaningful on open nodes.
	Share int
}

// Convenient leaf constructors.
var (
	bottom = &Term{Kind: Empty}
	top    = &Term{Kind: Any}
)

// leafReps holds one immutable node per leaf kind. Unshared leaves
// carry no per-occurrence state, and the domain operations are
// value-based (interner reps already alias equal subtrees as a DAG),
// so every MkLeaf occurrence can be the same node. Leaf allocation is
// hot — one node per constant cell on every abstraction — and this
// removes it entirely.
var leafReps = func() [List + 1]*Term {
	var reps [List + 1]*Term
	for k := Empty; k <= List; k++ {
		reps[k] = &Term{Kind: k}
	}
	reps[Empty] = bottom
	reps[Any] = top
	return reps
}()

// MkLeaf returns the shared leaf node of kind k. Callers must not
// mutate the result; code that builds a leaf to then set Share or Elem
// allocates its own node instead.
func MkLeaf(k Kind) *Term {
	if k == Struct || k == List {
		// Not leaves; a caller wanting an empty shell gets a private node
		// it may fill in.
		return &Term{Kind: k}
	}
	return leafReps[k]
}

// MkStructT returns a struct node.
func MkStructT(f term.Functor, args ...*Term) *Term {
	if len(args) != f.Arity {
		panic("domain: struct arity mismatch")
	}
	return &Term{Kind: Struct, Fn: f, Args: args}
}

// MkListT returns an alpha-list node.
func MkListT(elem *Term) *Term { return &Term{Kind: List, Elem: elem} }

// Bottom returns the empty type.
func Bottom() *Term { return bottom }

// Top returns the any type.
func Top() *Term { return top }

// IsCons reports whether t is struct('.'/2, _, _).
func (t *Term) IsCons(tab *term.Tab) bool {
	return t.Kind == Struct && t.Fn.Name == tab.Dot && t.Fn.Arity == 2
}

// children returns all child nodes.
func (t *Term) children() []*Term {
	if t.Kind == List {
		return []*Term{t.Elem}
	}
	return t.Args
}

// Normalize rewrites degenerate types to canonical form: a structure
// with an empty argument denotes no terms at all and becomes empty, and
// list(empty) denotes exactly {[]} and becomes nil. The analyzer never
// constructs degenerate types, but the algebra must be total on them.
func Normalize(t *Term) *Term {
	switch t.Kind {
	case Struct:
		args := make([]*Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = Normalize(a)
			if args[i] != a {
				changed = true
			}
			if args[i].Kind == Empty {
				return bottom
			}
		}
		if !changed {
			return t
		}
		out := *t
		out.Args = args
		return &out
	case List:
		e := Normalize(t.Elem)
		if e.Kind == Empty {
			return MkLeaf(Nil)
		}
		if e == t.Elem {
			return t
		}
		out := *t
		out.Elem = e
		return &out
	default:
		return t
	}
}

// Leq reports the lattice ordering a ⊑ b over types (share groups are
// ignored here; sharing is compared at the Pattern level).
func Leq(tab *term.Tab, a, b *Term) bool {
	a, b = Normalize(a), Normalize(b)
	if a.Kind == Empty {
		return true
	}
	switch b.Kind {
	case Any:
		return true
	case Empty:
		return false
	case Var:
		return a.Kind == Var
	case Nil:
		return a.Kind == Nil
	case Atom:
		return a.Kind == Nil || a.Kind == Atom
	case Intg:
		return a.Kind == Intg
	case Const:
		return a.Kind == Nil || a.Kind == Atom || a.Kind == Intg || a.Kind == Const
	case Ground:
		return IsGround(tab, a)
	case NV:
		return a.Kind != Var && a.Kind != Any && nvLeqNV(a)
	case Struct:
		if a.Kind != Struct || a.Fn != b.Fn {
			return false
		}
		for i := range a.Args {
			if !Leq(tab, a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	case List:
		switch a.Kind {
		case Nil:
			return true
		case List:
			return Leq(tab, a.Elem, b.Elem)
		case Struct:
			if !a.IsCons(tab) {
				return false
			}
			return Leq(tab, a.Args[0], b.Elem) && Leq(tab, a.Args[1], b)
		}
		return false
	}
	return false
}

func nvLeqNV(a *Term) bool {
	// Everything except var/any/empty is below nv; struct and list are
	// below nv regardless of their parameters.
	switch a.Kind {
	case Var, Any, Empty:
		return false
	}
	return true
}

// IsGround reports t ⊑ ground.
func IsGround(tab *term.Tab, t *Term) bool {
	switch t.Kind {
	case Empty, Nil, Atom, Intg, Const, Ground:
		return true
	case Struct:
		for _, a := range t.Args {
			if !IsGround(tab, a) {
				return false
			}
		}
		return true
	case List:
		return IsGround(tab, t.Elem)
	default:
		return false
	}
}

// asList views t as an alpha-list if possible, returning the element
// type. It succeeds for nil, list types and cons chains ending in one of
// those.
func asList(tab *term.Tab, t *Term) (*Term, bool) {
	switch t.Kind {
	case Nil:
		return bottom, true
	case List:
		return t.Elem, true
	case Struct:
		if !t.IsCons(tab) {
			return nil, false
		}
		rest, ok := asList(tab, t.Args[1])
		if !ok {
			return nil, false
		}
		return Lub(tab, t.Args[0], rest), true
	default:
		return nil, false
	}
}

// listTailElem reports whether t, viewed as the tail of a cons cell, is
// an alpha-list or a cons chain ending in one, returning the lub of the
// list element with the chain's heads. Unlike asList it fails on
// nil-terminated chains: those denote lists of one exact length and are
// kept precise — only tails that already admit arbitrary continuation
// trigger the uniform-list normalization.
func listTailElem(tab *term.Tab, t *Term) (*Term, bool) {
	switch t.Kind {
	case List:
		return t.Elem, true
	case Struct:
		if !t.IsCons(tab) {
			return nil, false
		}
		rest, ok := listTailElem(tab, t.Args[1])
		if !ok {
			return nil, false
		}
		return Lub(tab, t.Args[0], rest), true
	default:
		return nil, false
	}
}

// Lub returns the least upper bound of two types. Share groups of the
// result are cleared; the Pattern-level lub reinstates sharing.
func Lub(tab *term.Tab, a, b *Term) *Term {
	a, b = Normalize(a), Normalize(b)
	if Leq(tab, a, b) {
		return stripShare(b)
	}
	if Leq(tab, b, a) {
		return stripShare(a)
	}
	// Same-functor structures join pointwise.
	if a.Kind == Struct && b.Kind == Struct && a.Fn == b.Fn {
		args := make([]*Term, len(a.Args))
		for i := range args {
			args[i] = Lub(tab, a.Args[i], b.Args[i])
		}
		// A cons whose tail joined into an alpha-list is normalized to the
		// uniform non-empty list form [u|list(u)], u = head ⊔ elem.
		// Without this the pointwise join of nil-terminated chains of
		// different length ([x|[]] ⊔ [x|[y|[]]]) would produce [x|list(y)]
		// — a head strictly below the tail's element type — and the shape
		// of such mixed cells would depend on the order contributions
		// arrived in. The uniform form is the least order-independent
		// representative that still excludes [], which keeps widen∘lub
		// schedule-confluent without conflating non-empty lists with
		// possibly-empty ones (DESIGN §3.10).
		if a.IsCons(tab) {
			if e, ok := listTailElem(tab, args[1]); ok {
				u := Lub(tab, args[0], e)
				return MkStructT(a.Fn, u, MkListT(u))
			}
		}
		return MkStructT(a.Fn, args...)
	}
	// The list inference rule: nil ⊔ cons chains ⊔ list types give a
	// parameterized list (this is what makes alpha-list "a precise type
	// for the union of [] and [alpha|alpha-list]").
	if ea, okA := asList(tab, a); okA {
		if eb, okB := asList(tab, b); okB {
			return MkListT(Lub(tab, ea, eb))
		}
	}
	// Otherwise climb the leaf chain to the least common ancestor.
	for _, k := range []Kind{Atom, Intg, Const, Ground, NV} {
		cand := MkLeaf(k)
		if Leq(tab, a, cand) && Leq(tab, b, cand) {
			return cand
		}
	}
	return top
}

func stripShare(t *Term) *Term {
	if t.Share == 0 {
		hasShare := false
		for _, c := range t.children() {
			if hasAnyShare(c) {
				hasShare = true
				break
			}
		}
		if !hasShare {
			return t
		}
	}
	out := *t
	out.Share = 0
	if t.Kind == Struct {
		out.Args = make([]*Term, len(t.Args))
		for i, a := range t.Args {
			out.Args[i] = stripShare(a)
		}
	}
	if t.Kind == List {
		out.Elem = stripShare(t.Elem)
	}
	return &out
}

func hasAnyShare(t *Term) bool {
	if t.Share != 0 {
		return true
	}
	for _, c := range t.children() {
		if hasAnyShare(c) {
			return true
		}
	}
	return false
}

// Widen is the upper closure onto the widened subdomain: the paper's
// term-depth restriction — composite subterms at depth k are replaced by
// g (when the subtree is certainly ground), nv (when certainly
// non-variable) or any, so that the result's Depth is at most k — plus
// the uniform-list closure: a cons cell whose tail is an alpha-list is
// normalized to [u|list(u)] with u = head ⊔ elem. The closure erases
// the schedule-dependent head/element asymmetry of such cells while
// keeping the non-empty/possibly-empty distinction, which is what makes
// lub∘widen order-independent on terms in Widen's image (DESIGN §3.10):
// every fixpoint schedule converges to the same table. Widening only
// goes up the lattice, so the analysis stays sound and the domain stays
// finite.
func Widen(tab *term.Tab, t *Term, k int) *Term {
	// A cons chain about to be truncated generalizes to its alpha-list
	// view when it has one: [1,2,...,30] widens to list(int) rather than
	// to g, preserving the paper's list-awareness for long data. A cons
	// chain is provably non-empty, so it generalizes to the uniform
	// non-empty form when the depth budget allows the extra level —
	// widening must never inject [] into a summary that excluded it, or
	// the injection (a function of the schedule-dependent chain depth)
	// would make base-case clauses reachable under one schedule and not
	// another.
	if t.Kind == Struct && Depth(t) > k {
		if elem, ok := asList(tab, Normalize(t)); ok {
			if k >= 3 {
				u := Widen(tab, elem, k-2)
				return MkStructT(t.Fn, u, MkListT(u))
			}
			if k == 2 {
				return MkListT(Widen(tab, elem, k-1))
			}
		}
	}
	if (t.Kind == Struct || t.Kind == List) && k <= 1 {
		switch {
		case IsGround(tab, t):
			return MkLeaf(Ground)
		case Leq(tab, t, MkLeaf(NV)):
			return MkLeaf(NV)
		default:
			return top
		}
	}
	switch t.Kind {
	case Struct:
		args := make([]*Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = Widen(tab, a, k-1)
			if args[i] != a {
				changed = true
			}
		}
		// The closure rule: a cons whose tail chain reaches an alpha-list
		// is normalized to the uniform non-empty form. Checked on the
		// widened tail — which, bottom-up, is already uniform — so the
		// operator is idempotent and the normal form is always exactly one
		// cons level over the list. The element sits one level deeper than
		// the head did, so it is re-widened to the tail-element budget.
		if t.IsCons(tab) {
			if e, ok := listTailElem(tab, args[1]); ok {
				u := Lub(tab, args[0], e)
				if k >= 3 {
					u = Widen(tab, u, k-2)
					return MkStructT(t.Fn, u, MkListT(u))
				}
				return MkListT(Widen(tab, u, k-1))
			}
		}
		if !changed {
			return t
		}
		out := *t
		out.Args = args
		return &out
	case List:
		e := Widen(tab, t.Elem, k-1)
		if e == t.Elem {
			return t
		}
		out := *t
		out.Elem = e
		return &out
	default:
		return t
	}
}

// Depth returns the depth of the deepest node (leaves are depth 1).
func Depth(t *Term) int {
	d := 0
	for _, c := range t.children() {
		if cd := Depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Member reports whether the concrete term tm belongs to the
// concretization of t. Unbound source variables are members of var and
// any only. Sharing constraints are ignored (the check is used as an
// over-approximation witness by the soundness tests).
func Member(tab *term.Tab, tm *term.Term, t *Term) bool {
	switch t.Kind {
	case Empty:
		return false
	case Any:
		return true
	case Var:
		return tm.Kind == term.KVar
	case Nil:
		return tab.IsNil(tm)
	case Atom:
		return tm.Kind == term.KAtom
	case Intg:
		return tm.Kind == term.KInt
	case Const:
		return tm.Kind == term.KAtom || tm.Kind == term.KInt
	case Ground:
		return concreteGround(tm)
	case NV:
		return tm.Kind != term.KVar
	case Struct:
		if tm.Kind != term.KStruct || tm.Fn != t.Fn {
			return false
		}
		for i := range tm.Args {
			if !Member(tab, tm.Args[i], t.Args[i]) {
				return false
			}
		}
		return true
	case List:
		for tab.IsCons(tm) {
			if !Member(tab, tm.Args[0], t.Elem) {
				return false
			}
			tm = tm.Args[1]
		}
		return tab.IsNil(tm)
	}
	return false
}

// AbstractConcrete abstracts a concrete term the way the analyzer
// abstracts heap terms: constants to the atom/integer classes, [] to
// nil, structures pointwise, and unbound variables to var leaves with
// one share group per distinct variable (shares accumulates the
// variable-to-group assignment across calls, so repeated variables
// alias). It is the alpha function of the soundness obligation: for
// every concrete term tm, Member(tab, tm, AbstractConcrete(tab, tm, s))
// holds.
func AbstractConcrete(tab *term.Tab, tm *term.Term, shares map[*term.VarRef]int) *Term {
	switch tm.Kind {
	case term.KVar:
		id, ok := shares[tm.Ref]
		if !ok {
			id = len(shares) + 1
			shares[tm.Ref] = id
		}
		return &Term{Kind: Var, Share: id}
	case term.KInt:
		return MkLeaf(Intg)
	case term.KAtom:
		if tab.IsNil(tm) {
			return MkLeaf(Nil)
		}
		return MkLeaf(Atom)
	case term.KStruct:
		args := make([]*Term, len(tm.Args))
		for i, a := range tm.Args {
			args[i] = AbstractConcrete(tab, a, shares)
		}
		return MkStructT(tm.Fn, args...)
	}
	return top
}

func concreteGround(tm *term.Term) bool {
	switch tm.Kind {
	case term.KVar:
		return false
	case term.KStruct:
		for _, a := range tm.Args {
			if !concreteGround(a) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the type readably: lists as the paper's alpha-list
// (e.g. "list(g)"), cons structures in bracket notation, share groups as
// "#n" suffixes.
func (t *Term) String(tab *term.Tab) string {
	var b strings.Builder
	t.write(&b, tab)
	return b.String()
}

func (t *Term) write(b *strings.Builder, tab *term.Tab) {
	switch t.Kind {
	case Struct:
		if t.IsCons(tab) {
			b.WriteByte('[')
			t.Args[0].write(b, tab)
			b.WriteByte('|')
			t.Args[1].write(b, tab)
			b.WriteByte(']')
		} else {
			b.WriteString(tab.Name(t.Fn.Name))
			b.WriteByte('(')
			for i, a := range t.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				a.write(b, tab)
			}
			b.WriteByte(')')
		}
	case List:
		b.WriteString("list(")
		t.Elem.write(b, tab)
		b.WriteByte(')')
	default:
		b.WriteString(t.Kind.String())
	}
	if t.Share != 0 {
		fmt.Fprintf(b, "#%d", t.Share)
	}
}

// Equal compares types structurally, including share groups.
func Equal(a, b *Term) bool {
	if a.Kind != b.Kind || a.Share != b.Share {
		return false
	}
	switch a.Kind {
	case Struct:
		if a.Fn != b.Fn {
			return false
		}
		for i := range a.Args {
			if !Equal(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	case List:
		return Equal(a.Elem, b.Elem)
	default:
		return true
	}
}

// Copy deep-copies a type tree.
func Copy(t *Term) *Term {
	out := *t
	if t.Kind == Struct {
		out.Args = make([]*Term, len(t.Args))
		for i, a := range t.Args {
			out.Args[i] = Copy(a)
		}
	}
	if t.Kind == List {
		out.Elem = Copy(t.Elem)
	}
	return &out
}

// sortInts is a tiny helper for canonical share maps.
func sortInts(xs []int) { sort.Ints(xs) }
