package domain

import "awam/internal/term"

// Meet returns a lower bound of two types — the gfp-direction companion
// to Lub, used by the backward analysis (internal/backward) to combine
// demands imposed on the same run-time value. It under-approximates the
// greatest lower bound: whenever the rules below cannot name the exact
// glb they return empty, which over-demands and is therefore sound for
// the backward direction (a stronger demand can only shrink the set of
// calls declared safe, never admit an unsafe one). Share groups of the
// result are cleared; demands carry no aliasing (DESIGN §3.15).
func Meet(tab *term.Tab, a, b *Term) *Term {
	a, b = Normalize(a), Normalize(b)
	if Leq(tab, a, b) {
		return stripShare(a)
	}
	if Leq(tab, b, a) {
		return stripShare(b)
	}
	if r, ok := meetAsym(tab, a, b); ok {
		return r
	}
	if r, ok := meetAsym(tab, b, a); ok {
		return r
	}
	// Incomparable leaves with no structural rule (var∧nv, atom∧int,
	// const∧struct, ...): the only common lower bound the subdomain can
	// express is empty.
	return bottom
}

// meetAsym applies the structural meet rules with a on the left; the
// caller tries both argument orders, which keeps Meet commutative by
// construction.
func meetAsym(tab *term.Tab, a, b *Term) (*Term, bool) {
	switch {
	case a.Kind == Struct && b.Kind == Struct && a.Fn == b.Fn:
		args := make([]*Term, len(a.Args))
		for i := range args {
			args[i] = Meet(tab, a.Args[i], b.Args[i])
		}
		return Normalize(MkStructT(a.Fn, args...)), true
	case a.Kind == List && b.Kind == List:
		return Normalize(MkListT(Meet(tab, a.Elem, b.Elem))), true
	case a.IsCons(tab) && b.Kind == List:
		// A non-empty list meets an alpha-list pointwise: the head against
		// the element, the tail against the whole list type.
		h := Meet(tab, a.Args[0], b.Elem)
		t := Meet(tab, a.Args[1], b)
		return Normalize(MkStructT(a.Fn, h, t)), true
	case a.Kind == Ground && b.Kind == Struct:
		args := make([]*Term, len(b.Args))
		for i := range args {
			args[i] = Meet(tab, b.Args[i], a)
		}
		return Normalize(MkStructT(b.Fn, args...)), true
	case a.Kind == Ground && b.Kind == List:
		return Normalize(MkListT(Meet(tab, b.Elem, a))), true
	case (a.Kind == Atom || a.Kind == Const) && b.Kind == List:
		// [] is the only term that is both an atom/constant and a list.
		return MkLeaf(Nil), true
	}
	return nil, false
}

// MeetPattern meets two patterns of the same predicate pointwise. A nil
// pattern (bottom) is absorbing, and a pattern with an empty argument
// denotes no satisfiable call at all and collapses to nil.
func MeetPattern(tab *term.Tab, p, q *Pattern) *Pattern {
	if p == nil || q == nil {
		return nil
	}
	if p.Fn != q.Fn {
		panic("domain: meet of patterns of different predicates")
	}
	args := make([]*Term, len(p.Args))
	for i := range args {
		args[i] = Meet(tab, p.Args[i], q.Args[i])
		if args[i].Kind == Empty {
			return nil
		}
	}
	return (&Pattern{Fn: p.Fn, Args: args}).Canonical()
}
