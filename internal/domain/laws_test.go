package domain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awam/internal/term"
)

// This file checks the algebraic laws behind schedule confluence
// (DESIGN §3.7): the fixpoint engine merges table entries with
//
//	merge(a, b) = Widen(Lub(a, b), k)
//
// and the analysis result is independent of evaluation order exactly
// when merge is an idempotent, commutative, associative join on the
// widened subdomain — i.e. when Widen is an upper closure (extensive,
// monotone, idempotent) and Lub restricted to widened elements stays
// widened. Each law is tested by byte-identity (Equal / Key), not just
// mutual Leq, because the fuzz oracle compares marshaled tables.

var lawDepths = []int{2, 3, 4, 6}

// normGen draws a random normalized type: the laws are stated on the
// normalized carrier (Normalize collapses degenerate empty-containing
// terms, which the analyzer never constructs — see Normalize's doc).
func normGen(r *rand.Rand, tab *term.Tab) *Term {
	return Normalize(genAbs(r, tab, 5))
}

// lubW is merge: the lub of two widened elements, re-widened.
func lubW(tab *term.Tab, a, b *Term, k int) *Term {
	return Widen(tab, Lub(tab, a, b), k)
}

func TestWidenUpperClosure(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(41))
	for _, k := range lawDepths {
		f := func() bool {
			a := normGen(r, tab)
			w := Widen(tab, a, k)
			// extensive: a ⊑ Widen(a)
			if !Leq(tab, a, w) {
				t.Logf("k=%d not extensive: %s ⋢ %s", k, a.String(tab), w.String(tab))
				return false
			}
			// idempotent: Widen(Widen(a)) == Widen(a), byte-identical
			if !Equal(Widen(tab, w, k), w) {
				t.Logf("k=%d not idempotent: %s", k, w.String(tab))
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

// TestMergeLeqMonotone checks monotonicity where the engine needs it:
// on the widened subdomain, merge is monotone in each argument
// (wa ⊑ wb ⇒ merge(wa, wc) ⊑ merge(wb, wc)). Unrestricted
// Leq-monotonicity of Widen does NOT hold — the uniform-list closure
// trades it for associativity on the image. Counterexample at k = 3:
//
//	a = [list(list(int))|[]] ⊑ b = list(list(any)), but
//	Widen(a) = [g|list(g)] ⋢ Widen(b) = list(list(any))
//
// because collapsing a's chain spends depth budget on the joined
// element (g) while b's nested lists keep theirs. The fixpoint never
// compares across that boundary: the table stores only widened
// elements, every contribution is widened by abstractArgs before it
// meets the table, and there merge is the semilattice join.
func TestMergeLeqMonotone(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(43))
	for _, k := range lawDepths {
		f := func() bool {
			wa := Widen(tab, normGen(r, tab), k)
			wc := Widen(tab, normGen(r, tab), k)
			// wb = merge(wa, ·) guarantees wa ⊑ wb inside the subdomain.
			wb := lubW(tab, wa, Widen(tab, normGen(r, tab), k), k)
			if !Leq(tab, wa, wb) {
				t.Logf("k=%d merge not extensive: %s ⋢ %s", k, wa.String(tab), wb.String(tab))
				return false
			}
			if !Leq(tab, lubW(tab, wa, wc, k), lubW(tab, wb, wc, k)) {
				t.Logf("k=%d merge not monotone: wa=%s wb=%s wc=%s", k,
					wa.String(tab), wb.String(tab), wc.String(tab))
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

// TestLubClosedOnWidened is the closure law: the lub of two widened
// elements is already widened, so Widen(Lub(Widen(a), Widen(b))) ==
// Lub(Widen(a), Widen(b)). This is what makes merge a true join on the
// widened subdomain (rather than merely an upper-bound operator).
func TestLubClosedOnWidened(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(47))
	for _, k := range lawDepths {
		f := func() bool {
			wa := Widen(tab, normGen(r, tab), k)
			wb := Widen(tab, normGen(r, tab), k)
			l := Lub(tab, wa, wb)
			if !Equal(Widen(tab, l, k), l) {
				t.Logf("k=%d lub escapes widened subdomain: %s ⊔ %s = %s (widens to %s)",
					k, wa.String(tab), wb.String(tab), l.String(tab),
					Widen(tab, l, k).String(tab))
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestMergeIdempotentCommutative(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(53))
	for _, k := range lawDepths {
		f := func() bool {
			wa := Widen(tab, normGen(r, tab), k)
			wb := Widen(tab, normGen(r, tab), k)
			if !Equal(lubW(tab, wa, wa, k), wa) {
				t.Logf("k=%d merge not idempotent on %s", k, wa.String(tab))
				return false
			}
			if !Equal(lubW(tab, wa, wb, k), lubW(tab, wb, wa, k)) {
				t.Logf("k=%d merge not commutative: %s vs %s", k,
					lubW(tab, wa, wb, k).String(tab), lubW(tab, wb, wa, k).String(tab))
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(59))
	for _, k := range lawDepths {
		f := func() bool {
			wa := Widen(tab, normGen(r, tab), k)
			wb := Widen(tab, normGen(r, tab), k)
			wc := Widen(tab, normGen(r, tab), k)
			l := lubW(tab, lubW(tab, wa, wb, k), wc, k)
			rgt := lubW(tab, wa, lubW(tab, wb, wc, k), k)
			if !Equal(l, rgt) {
				t.Logf("k=%d merge not associative:\n  a=%s b=%s c=%s\n  (ab)c=%s a(bc)=%s",
					k, wa.String(tab), wb.String(tab), wc.String(tab),
					l.String(tab), rgt.String(tab))
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

// TestMergePatternLaws lifts the laws to whole patterns, the values the
// extension table actually stores: mergeP = WidenPattern ∘ LubPattern,
// compared by canonical Key (the byte string the fuzz oracle diffs).
func TestMergePatternLaws(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(61))
	fn := tab.Func("p", 3)
	genPat := func(k int) *Pattern {
		args := make([]*Term, 3)
		for i := range args {
			args[i] = Normalize(genAbs(r, tab, 4))
		}
		return WidenPattern(tab, NewPattern(fn, args).Canonical(), k)
	}
	mergeP := func(a, b *Pattern, k int) *Pattern {
		return WidenPattern(tab, LubPattern(tab, a, b), k)
	}
	for _, k := range []int{3, 4} {
		f := func() bool {
			pa, pb, pc := genPat(k), genPat(k), genPat(k)
			if mergeP(pa, pa, k).Key() != pa.Key() {
				t.Logf("k=%d pattern merge not idempotent: %s", k, pa.String(tab))
				return false
			}
			if mergeP(pa, pb, k).Key() != mergeP(pb, pa, k).Key() {
				t.Logf("k=%d pattern merge not commutative: %s / %s",
					k, pa.String(tab), pb.String(tab))
				return false
			}
			l := mergeP(mergeP(pa, pb, k), pc, k)
			rgt := mergeP(pa, mergeP(pb, pc, k), k)
			if l.Key() != rgt.Key() {
				t.Logf("k=%d pattern merge not associative:\n  a=%s b=%s c=%s\n  (ab)c=%s a(bc)=%s",
					k, pa.String(tab), pb.String(tab), pc.String(tab),
					l.String(tab), rgt.String(tab))
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}
