package domain

import (
	"sync"

	"awam/internal/term"
)

// This file implements hash-consing for the abstract domain: a
// concurrent Interner that maps every canonical Pattern (and,
// recursively, every abstract Term occurring in one) to a dense integer
// PatternID. Two patterns receive the same ID exactly when their Key()
// serializations are equal (share groups renumbered in first-occurrence
// order), so the engine can key its extension table, worklist dedup and
// dependency edges on a word compare instead of building and hashing a
// string per lookup.
//
// The interner never serializes: identity is structural. A term node's
// identity is (kind, renumbered share, functor, child IDs); because the
// children are already interned, a deep comparison of two subtrees is a
// shallow comparison of small integers. The renumbering is per-pattern
// (the same map Key() threads through its arguments), so a subtree's
// TermID depends on where its share groups sit in the whole pattern —
// exactly the equivalence Key() quotients by.
//
// Concurrency: the depth-k-widened domain is finite, so after a short
// warm-up almost every Intern call finds its pattern already present.
// The fast path therefore walks under a read lock; only a miss retries
// the walk under the write lock (RWMutex cannot upgrade, and the insert
// path re-checks every node, so the race window between the two walks
// is harmless). The interner lock is leaf-level: no entry, shard or
// queue lock is ever acquired while holding it, so callers may intern
// while holding engine locks.
//
// Each interned pattern stores a canonical representative (*Pattern)
// whose Key is precomputed under the write lock before the ID is
// published — the engine shares these reps across goroutines, and the
// lazy Key memo must never be written concurrently. Reps share interned
// subtrees (a DAG, not a tree), which every consumer tolerates: the
// domain operations are read-only and value-based.

// PatternID is the dense hash-consed identity of a canonical Pattern.
// IDs are only meaningful within the Interner that produced them.
type PatternID int32

// TermID identifies one interned abstract term node (pattern-context
// renumbered, see above).
type TermID int32

// BottomID is the PatternID of the nil pattern (no success recorded).
const BottomID PatternID = 0

// tnode is one interned term: its shallow structure over child IDs plus
// the canonical representative subtree.
type tnode struct {
	kind  Kind
	share int32 // pattern-renumbered group id, 0 = unshared
	fn    term.Functor
	elem  TermID   // List
	args  []TermID // Struct
	rep   *Term
}

// pnode is one interned pattern.
type pnode struct {
	fn   term.Functor
	args []TermID
	rep  *Pattern
}

// Interner is the concurrent hash-conser. The zero value is not ready;
// use NewInterner.
type Interner struct {
	mu    sync.RWMutex
	terms []tnode
	tbuck map[uint64][]TermID
	pats  []pnode
	pbuck map[uint64][]PatternID
	// fast buckets whole-pattern structural hashes to candidate IDs: the
	// steady-state Intern call (finite widened domain, almost all hits)
	// resolves with one tree hash, one map probe and one compare against
	// the canonical rep, instead of a per-node bucket probe in tbuck.
	fast map[uint64][]PatternID
}

// NewInterner returns an empty interner; ID 0 is reserved for Bottom.
func NewInterner() *Interner {
	return &Interner{
		terms: make([]tnode, 1), // TermID 0 is never issued
		tbuck: make(map[uint64][]TermID, 256),
		pats:  make([]pnode, 1), // PatternID 0 = Bottom (nil pattern)
		pbuck: make(map[uint64][]PatternID, 64),
		fast:  make(map[uint64][]PatternID, 64),
	}
}

// internScratch is the reusable per-walk state: the share renumbering
// map and a child-ID stack, pooled so the hot path allocates nothing.
type internScratch struct {
	renum map[int]int
	ids   []TermID
}

func (sc *internScratch) reset() {
	clear(sc.renum)
	sc.ids = sc.ids[:0]
}

var internScratchPool = sync.Pool{
	New: func() any {
		return &internScratch{renum: make(map[int]int, 8), ids: make([]TermID, 0, 16)}
	},
}

// Intern returns the ID of p's canonical form, interning it on first
// sight, and reports whether it was already present (the read-path hit;
// a concurrent first-insert race may very rarely count as a miss on
// both sides). nil interns to Bottom. Intern(p) == Intern(q) iff
// p.Key() == q.Key().
func (in *Interner) Intern(p *Pattern) (PatternID, bool) {
	if p == nil {
		return BottomID, true
	}
	sc := internScratchPool.Get().(*internScratch)
	h := hashPattern(p, sc)
	sc.reset()
	in.mu.RLock()
	for _, pid := range in.fast[h] {
		rep := in.pats[pid].rep
		if eqCanonical(p, rep, sc.renum) {
			in.mu.RUnlock()
			sc.reset()
			internScratchPool.Put(sc)
			return pid, true
		}
		clear(sc.renum)
	}
	id, ok := in.walkPattern(p, sc, false)
	in.mu.RUnlock()
	if !ok {
		sc.reset()
		in.mu.Lock()
		id, _ = in.walkPattern(p, sc, true)
		in.recordFast(h, id)
		in.mu.Unlock()
	} else {
		in.mu.Lock()
		in.recordFast(h, id)
		in.mu.Unlock()
	}
	sc.reset()
	internScratchPool.Put(sc)
	return id, ok
}

// recordFast adds id to the whole-pattern hash bucket (write lock held);
// a concurrent racer may have recorded it already.
func (in *Interner) recordFast(h uint64, id PatternID) {
	for _, pid := range in.fast[h] {
		if pid == id {
			return
		}
	}
	in.fast[h] = append(in.fast[h], id)
}

// hashPattern computes a whole-tree structural hash of p under the same
// equivalence walkPattern quotients by: share groups renumbered in
// first-occurrence preorder through sc.renum.
func hashPattern(p *Pattern, sc *internScratch) uint64 {
	h := mix(mix(fnvOffset, uint64(uint32(p.Fn.Name))), uint64(uint32(p.Fn.Arity)))
	for _, a := range p.Args {
		h = hashTermTree(a, sc, h)
	}
	return h
}

func hashTermTree(t *Term, sc *internScratch, h uint64) uint64 {
	var share int32
	if t.Share != 0 {
		g, ok := sc.renum[t.Share]
		if !ok {
			g = len(sc.renum) + 1
			sc.renum[t.Share] = g
		}
		share = int32(g)
	}
	h = mix(h, uint64(t.Kind)<<32|uint64(uint32(share)))
	h = mix(h, uint64(uint32(t.Fn.Name))<<16|uint64(uint32(t.Fn.Arity)))
	switch t.Kind {
	case Struct:
		h = mix(h, uint64(len(t.Args)))
		for _, a := range t.Args {
			h = hashTermTree(a, sc, h)
		}
	case List:
		h = hashTermTree(t.Elem, sc, h)
	}
	return h
}

// eqCanonical reports whether p is walkPattern-equivalent to the
// canonical rep: structurally equal with p's share groups mapping to
// rep's canonical first-occurrence numbering through renum (empty on
// entry; the caller clears it between candidates). Positional
// comparison makes the mapping bijective: a rep share that disagrees
// with p's renumbered value rejects immediately.
func eqCanonical(p *Pattern, rep *Pattern, renum map[int]int) bool {
	if p.Fn != rep.Fn || len(p.Args) != len(rep.Args) {
		return false
	}
	for i := range p.Args {
		if !eqCanonicalTerm(p.Args[i], rep.Args[i], renum) {
			return false
		}
	}
	return true
}

func eqCanonicalTerm(t, rep *Term, renum map[int]int) bool {
	if t.Kind != rep.Kind || t.Fn != rep.Fn {
		return false
	}
	want := 0
	if t.Share != 0 {
		g, ok := renum[t.Share]
		if !ok {
			g = len(renum) + 1
			renum[t.Share] = g
		}
		want = g
	}
	if rep.Share != want {
		return false
	}
	switch t.Kind {
	case Struct:
		if len(t.Args) != len(rep.Args) {
			return false
		}
		for i := range t.Args {
			if !eqCanonicalTerm(t.Args[i], rep.Args[i], renum) {
				return false
			}
		}
	case List:
		return eqCanonicalTerm(t.Elem, rep.Elem, renum)
	}
	return true
}

// Pattern returns the canonical representative of id (nil for Bottom).
// The rep is immutable with its Key precomputed, safe to share across
// goroutines.
func (in *Interner) Pattern(id PatternID) *Pattern {
	if id == BottomID {
		return nil
	}
	in.mu.RLock()
	rep := in.pats[id].rep
	in.mu.RUnlock()
	return rep
}

// Size reports the number of distinct patterns and term nodes interned.
func (in *Interner) Size() (patterns, terms int) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.pats) - 1, len(in.terms) - 1
}

// FNV-1a-style mixing over node fields and child IDs.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	return h
}

// walkPattern resolves p to its ID, interning missing nodes when insert
// is set. With insert unset it reports ok=false on the first node not
// yet present (the caller retries under the write lock).
func (in *Interner) walkPattern(p *Pattern, sc *internScratch, insert bool) (PatternID, bool) {
	base := len(sc.ids)
	for _, a := range p.Args {
		id, ok := in.walkTerm(a, sc, insert)
		if !ok {
			return 0, false
		}
		sc.ids = append(sc.ids, id)
	}
	args := sc.ids[base:]
	h := mix(mix(fnvOffset, uint64(uint32(p.Fn.Name))), uint64(uint32(p.Fn.Arity)))
	for _, id := range args {
		h = mix(h, uint64(id))
	}
	for _, pid := range in.pbuck[h] {
		n := &in.pats[pid]
		if n.fn == p.Fn && eqIDs(n.args, args) {
			return pid, true
		}
	}
	if !insert {
		return 0, false
	}
	var reps []*Term
	if len(args) > 0 {
		reps = make([]*Term, len(args))
		for i, id := range args {
			reps[i] = in.terms[id].rep
		}
	}
	rep := &Pattern{Fn: p.Fn, Args: reps}
	rep.Key() // precompute under the write lock: reps are shared read-only
	pid := PatternID(len(in.pats))
	in.pats = append(in.pats, pnode{fn: p.Fn, args: append([]TermID(nil), args...), rep: rep})
	in.pbuck[h] = append(in.pbuck[h], pid)
	return pid, true
}

// walkTerm resolves t within the current pattern walk. Share groups are
// renumbered through sc.renum in first-occurrence preorder — the same
// numbering Key() emits — before the children are resolved, so the
// stored share values are canonical.
func (in *Interner) walkTerm(t *Term, sc *internScratch, insert bool) (TermID, bool) {
	var share int32
	if t.Share != 0 {
		g, ok := sc.renum[t.Share]
		if !ok {
			g = len(sc.renum) + 1
			sc.renum[t.Share] = g
		}
		share = int32(g)
	}
	var fn term.Functor
	var elem TermID
	base := len(sc.ids)
	switch t.Kind {
	case Struct:
		fn = t.Fn
		for _, a := range t.Args {
			id, ok := in.walkTerm(a, sc, insert)
			if !ok {
				return 0, false
			}
			sc.ids = append(sc.ids, id)
		}
	case List:
		id, ok := in.walkTerm(t.Elem, sc, insert)
		if !ok {
			return 0, false
		}
		elem = id
	}
	args := sc.ids[base:]
	h := mix(mix(fnvOffset, uint64(t.Kind)<<32|uint64(uint32(share))), uint64(uint32(fn.Name))<<16|uint64(uint32(fn.Arity)))
	h = mix(h, uint64(elem))
	for _, id := range args {
		h = mix(h, uint64(id))
	}
	for _, id := range in.tbuck[h] {
		n := &in.terms[id]
		if n.kind == t.Kind && n.share == share && n.fn == fn && n.elem == elem && eqIDs(n.args, args) {
			sc.ids = sc.ids[:base]
			return id, true
		}
	}
	if !insert {
		return 0, false
	}
	var rep *Term
	switch t.Kind {
	case Struct:
		kids := make([]*Term, len(args))
		for i, id := range args {
			kids[i] = in.terms[id].rep
		}
		rep = &Term{Kind: Struct, Fn: fn, Args: kids, Share: int(share)}
	case List:
		rep = &Term{Kind: List, Elem: in.terms[elem].rep, Share: int(share)}
	default:
		rep = &Term{Kind: t.Kind, Share: int(share)}
	}
	id := TermID(len(in.terms))
	in.terms = append(in.terms, tnode{
		kind: t.Kind, share: share, fn: fn, elem: elem,
		args: append([]TermID(nil), args...), rep: rep,
	})
	in.tbuck[h] = append(in.tbuck[h], id)
	sc.ids = sc.ids[:base]
	return id, true
}

func eqIDs(a []TermID, b []TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Memo caches the pattern-level lattice operations on interned IDs, so
// repeated merges of the same summaries are map hits instead of graph
// walks. A Memo belongs to one goroutine (each parallel worker gets its
// own, folded into the driver's after the barrier, like the metrics
// shards — no hot-path locks); all IDs must come from one Interner, and
// the widen cache additionally assumes one fixed depth k per analysis.
type Memo struct {
	lub   map[[2]PatternID]PatternID
	widen map[PatternID]PatternID
	leq   map[[2]PatternID]bool
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{
		lub:   make(map[[2]PatternID]PatternID),
		widen: make(map[PatternID]PatternID),
		leq:   make(map[[2]PatternID]bool),
	}
}

// Lub looks up the cached LubPattern result for (a, b).
func (m *Memo) Lub(a, b PatternID) (PatternID, bool) {
	r, ok := m.lub[[2]PatternID{a, b}]
	return r, ok
}

// SetLub records a LubPattern result.
func (m *Memo) SetLub(a, b, r PatternID) { m.lub[[2]PatternID{a, b}] = r }

// Widen looks up the cached WidenPattern result for id.
func (m *Memo) Widen(id PatternID) (PatternID, bool) {
	r, ok := m.widen[id]
	return r, ok
}

// SetWiden records a WidenPattern result.
func (m *Memo) SetWiden(id, r PatternID) { m.widen[id] = r }

// Leq looks up the cached LeqPattern verdict for a ⊑ b.
func (m *Memo) Leq(a, b PatternID) (v, ok bool) {
	v, ok = m.leq[[2]PatternID{a, b}]
	return v, ok
}

// SetLeq records a LeqPattern verdict.
func (m *Memo) SetLeq(a, b PatternID, v bool) { m.leq[[2]PatternID{a, b}] = v }

// Absorb folds other's entries into m (post-barrier aggregation; the
// cached operations are pure functions of their IDs, so overlapping
// entries always agree and last-writer-wins is safe).
func (m *Memo) Absorb(other *Memo) {
	for k, v := range other.lub {
		m.lub[k] = v
	}
	for k, v := range other.widen {
		m.widen[k] = v
	}
	for k, v := range other.leq {
		m.leq[k] = v
	}
}
