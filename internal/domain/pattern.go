package domain

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"awam/internal/parser"
	"awam/internal/term"
)

// Pattern is a calling pattern or success pattern: an abstract term per
// argument position of a predicate, with share groups spanning the
// arguments. A nil *Pattern denotes bottom (no success recorded yet) —
// the paper's "call made earlier but no solution recorded".
type Pattern struct {
	Fn   term.Functor
	Args []*Term

	// key memoizes Key(); patterns are immutable once built.
	key string
}

// NewPattern builds a pattern; the args must already carry canonical
// share groups (use Canonical to renumber).
func NewPattern(fn term.Functor, args []*Term) *Pattern {
	return &Pattern{Fn: fn, Args: args}
}

// String renders the pattern like the paper: p(atom, list(g)).
func (p *Pattern) String(tab *term.Tab) string {
	if p == nil {
		return "bottom"
	}
	if len(p.Args) == 0 {
		return tab.Name(p.Fn.Name)
	}
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String(tab)
	}
	return tab.Name(p.Fn.Name) + "(" + strings.Join(parts, ", ") + ")"
}

// keyScratch pools the serialization buffer and renumbering map: Key is
// off the engine's hot path since the interner took over identity
// (intern.go), but display, serialization and the tests still call it,
// and the legacy path allocated a map and a growing buffer per pattern.
type keyScratch struct {
	buf   []byte
	renum map[int]int
}

var keyScratchPool = sync.Pool{
	New: func() any {
		return &keyScratch{buf: make([]byte, 0, 128), renum: make(map[int]int, 8)}
	},
}

// Key returns a canonical serialization usable as a lookup key. Share
// groups are renumbered in first-occurrence order, so two patterns
// equal up to group naming produce equal keys. The engine proper keys
// on interned PatternIDs (intern.go), which quotient by exactly the
// same equivalence; Key remains the human-readable/serialized boundary.
func (p *Pattern) Key() string {
	if p == nil {
		return "\x00bottom"
	}
	if p.key != "" {
		return p.key
	}
	sc := keyScratchPool.Get().(*keyScratch)
	buf := sc.buf[:0]
	buf = strconv.AppendInt(buf, int64(p.Fn.Name), 10)
	buf = append(buf, '/')
	buf = strconv.AppendInt(buf, int64(p.Fn.Arity), 10)
	for _, a := range p.Args {
		buf = keyTerm(buf, a, sc.renum)
	}
	p.key = string(buf)
	sc.buf = buf
	clear(sc.renum)
	keyScratchPool.Put(sc)
	return p.key
}

func keyTerm(buf []byte, t *Term, renum map[int]int) []byte {
	buf = append(buf, '(', byte('0'+t.Kind))
	if t.Share != 0 {
		id, ok := renum[t.Share]
		if !ok {
			id = len(renum) + 1
			renum[t.Share] = id
		}
		buf = append(buf, '#')
		buf = strconv.AppendInt(buf, int64(id), 10)
	}
	switch t.Kind {
	case Struct:
		buf = strconv.AppendInt(buf, int64(t.Fn.Name), 10)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, int64(t.Fn.Arity), 10)
		for _, a := range t.Args {
			buf = keyTerm(buf, a, renum)
		}
	case List:
		buf = keyTerm(buf, t.Elem, renum)
	}
	return append(buf, ')')
}

// Equal compares patterns up to share-group renaming.
func (p *Pattern) Equal(q *Pattern) bool {
	if p == nil || q == nil {
		return p == q
	}
	return p.Key() == q.Key()
}

// Canonical renumbers share groups in first-occurrence order and drops
// groups used only once (a group of one is no sharing at all).
func (p *Pattern) Canonical() *Pattern {
	if p == nil {
		return nil
	}
	// Fast path: a pattern with no share groups is already canonical.
	anyShare := false
	for _, a := range p.Args {
		if hasAnyShare(a) {
			anyShare = true
			break
		}
	}
	if !anyShare {
		return p
	}
	count := make(map[int]int)
	// A share group denotes a single run-time instance, so all its
	// occurrences must be structurally identical; inconsistent groups
	// (possible only through hand-built patterns) are dropped rather
	// than trusted.
	firstOcc := make(map[int]*Term)
	bad := make(map[int]bool)
	var countWalk func(t *Term)
	countWalk = func(t *Term) {
		if t.Share != 0 {
			count[t.Share]++
			if f, ok := firstOcc[t.Share]; ok {
				if !Equal(f, t) {
					bad[t.Share] = true
				}
			} else {
				firstOcc[t.Share] = t
			}
		}
		for _, c := range t.children() {
			countWalk(c)
		}
	}
	for _, a := range p.Args {
		countWalk(a)
	}
	for g := range bad {
		count[g] = 1 // force the drop below
	}
	renum := make(map[int]int)
	var rew func(t *Term) *Term
	rew = func(t *Term) *Term {
		out := *t
		if t.Share != 0 {
			if count[t.Share] < 2 {
				out.Share = 0
			} else {
				id, ok := renum[t.Share]
				if !ok {
					id = len(renum) + 1
					renum[t.Share] = id
				}
				out.Share = id
			}
		}
		if t.Kind == Struct {
			out.Args = make([]*Term, len(t.Args))
			for i, a := range t.Args {
				out.Args[i] = rew(a)
			}
		}
		if t.Kind == List {
			out.Elem = rew(t.Elem)
		}
		return &out
	}
	args := make([]*Term, len(p.Args))
	for i, a := range p.Args {
		args[i] = rew(a)
	}
	return &Pattern{Fn: p.Fn, Args: args}
}

// ArgSharePairs returns the argument index pairs (i < j) whose subtrees
// contain nodes of a common share group — the predicate-level aliasing
// report.
func (p *Pattern) ArgSharePairs() [][2]int {
	if p == nil {
		return nil
	}
	groups := make(map[int][]int) // group -> arg indices
	for i, a := range p.Args {
		seen := make(map[int]bool)
		var walk func(t *Term)
		walk = func(t *Term) {
			if t.Share != 0 && !seen[t.Share] {
				seen[t.Share] = true
				groups[t.Share] = append(groups[t.Share], i)
			}
			for _, c := range t.children() {
				walk(c)
			}
		}
		walk(a)
	}
	pairSet := make(map[[2]int]bool)
	for _, idxs := range groups {
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				pairSet[[2]int{idxs[i], idxs[j]}] = true
			}
		}
	}
	var out [][2]int
	for pr := range pairSet {
		out = append(out, pr)
	}
	// Deterministic order for reports.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j][0] < out[i][0] || (out[j][0] == out[i][0] && out[j][1] < out[i][1]) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// --- graph form for sharing-aware lub ---

type gnode struct {
	kind   Kind
	fn     term.Functor
	args   []*gnode
	elem   *gnode
	shared bool // carried a share group in the source pattern
}

func (g *gnode) children() []*gnode {
	if g.kind == List {
		return []*gnode{g.elem}
	}
	return g.args
}

// graphify converts share-group trees into pointer-shared DAGs.
func graphify(p *Pattern) []*gnode {
	byGroup := make(map[int]*gnode)
	var conv func(t *Term) *gnode
	conv = func(t *Term) *gnode {
		if t.Share != 0 {
			if n, ok := byGroup[t.Share]; ok {
				return n
			}
		}
		n := &gnode{kind: t.Kind, fn: t.Fn, shared: t.Share != 0}
		if t.Share != 0 {
			byGroup[t.Share] = n
		}
		if t.Kind == Struct {
			n.args = make([]*gnode, len(t.Args))
			for i, a := range t.Args {
				n.args[i] = conv(a)
			}
		}
		if t.Kind == List {
			n.elem = conv(t.Elem)
		}
		return n
	}
	out := make([]*gnode, len(p.Args))
	for i, a := range p.Args {
		out[i] = conv(a)
	}
	return out
}

// treeify converts a pointer-shared DAG back into share-group trees,
// assigning group ids in DFS first-visit order (canonical).
func treeify(fn term.Functor, roots []*gnode) *Pattern {
	counts := make(map[*gnode]int)
	var count func(n *gnode)
	count = func(n *gnode) {
		counts[n]++
		if counts[n] > 1 {
			return
		}
		for _, c := range n.children() {
			count(c)
		}
	}
	for _, r := range roots {
		count(r)
	}
	ids := make(map[*gnode]int)
	var conv func(n *gnode) *Term
	conv = func(n *gnode) *Term {
		t := &Term{Kind: n.kind, Fn: n.fn}
		if counts[n] > 1 && n.kind.Open() {
			id, ok := ids[n]
			if !ok {
				id = len(ids) + 1
				ids[n] = id
			}
			t.Share = id
		}
		if n.kind == Struct {
			t.Args = make([]*Term, len(n.args))
			for i, a := range n.args {
				t.Args[i] = conv(a)
			}
		}
		if n.kind == List {
			t.Elem = conv(n.elem)
		}
		return t
	}
	args := make([]*Term, len(roots))
	for i, r := range roots {
		args[i] = conv(r)
	}
	return &Pattern{Fn: fn, Args: args}
}

// gToTree flattens a graph subtree to a plain type tree (sharing
// resolved away), for the shape-mismatch fallback.
func gToTree(n *gnode, busy map[*gnode]bool) *Term {
	if busy[n] {
		return top // cyclic sharing degenerates to any
	}
	busy[n] = true
	defer delete(busy, n)
	t := &Term{Kind: n.kind, Fn: n.fn}
	if n.kind == Struct {
		t.Args = make([]*Term, len(n.args))
		for i, a := range n.args {
			t.Args[i] = gToTree(a, busy)
		}
	}
	if n.kind == List {
		t.Elem = gToTree(n.elem, busy)
	}
	return t
}

func treeToG(t *Term) *gnode {
	n := &gnode{kind: t.Kind, fn: t.Fn}
	if t.Kind == Struct {
		n.args = make([]*gnode, len(t.Args))
		for i, a := range t.Args {
			n.args[i] = treeToG(a)
		}
	}
	if t.Kind == List {
		n.elem = treeToG(t.Elem)
	}
	return n
}

func subgraphShared(n *gnode, seen map[*gnode]bool) bool {
	if seen[n] {
		return false
	}
	seen[n] = true
	if n.shared {
		return true
	}
	for _, c := range n.children() {
		if subgraphShared(c, seen) {
			return true
		}
	}
	return false
}

// devarify replaces var leaves with any, in place. It is applied to lub
// results whose input sharing was dropped: var is the only abstract type
// not closed under instantiation through a lost alias (see DESIGN.md).
func devarify(n *gnode, seen map[*gnode]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	if n.kind == Var {
		n.kind = Any
	}
	for _, c := range n.children() {
		devarify(c, seen)
	}
}

type gpair struct{ a, b *gnode }

// LubPattern computes the least upper bound of two patterns of the same
// predicate, preserving sharing that is common to both (definite
// aliasing) and soundly widening var nodes whose one-sided sharing had
// to be dropped.
func LubPattern(tab *term.Tab, p, q *Pattern) *Pattern {
	if p == nil {
		if q == nil {
			return nil
		}
		return q.Canonical()
	}
	if q == nil {
		return p.Canonical()
	}
	if p.Fn != q.Fn {
		panic("domain: lub of patterns of different predicates")
	}
	ga := graphify(p)
	gb := graphify(q)
	memo := make(map[gpair]*gnode)
	byA := make(map[*gnode][]*gnode) // input a-node -> result nodes
	byB := make(map[*gnode][]*gnode)

	var lub func(a, b *gnode) *gnode
	lub = func(a, b *gnode) *gnode {
		key := gpair{a, b}
		if r, ok := memo[key]; ok {
			return r
		}
		var r *gnode
		switch {
		case a.kind == b.kind && a.kind == Struct && a.fn == b.fn:
			r = &gnode{kind: Struct, fn: a.fn}
			memo[key] = r
			byA[a] = append(byA[a], r)
			byB[b] = append(byB[b], r)
			r.args = make([]*gnode, len(a.args))
			for i := range a.args {
				r.args[i] = lub(a.args[i], b.args[i])
			}
			return r
		case a.kind == b.kind && a.kind == List:
			r = &gnode{kind: List}
			memo[key] = r
			byA[a] = append(byA[a], r)
			byB[b] = append(byB[b], r)
			r.elem = lub(a.elem, b.elem)
			return r
		case a.kind == b.kind && a.kind != Struct && a.kind != List:
			r = &gnode{kind: a.kind}
		default:
			// Shape mismatch: fall back to the type-level lub; any
			// sharing inside is dropped, so devarify when needed.
			ta := gToTree(a, make(map[*gnode]bool))
			tb := gToTree(b, make(map[*gnode]bool))
			t := Lub(tab, ta, tb)
			r = treeToG(t)
			if subgraphShared(a, make(map[*gnode]bool)) || subgraphShared(b, make(map[*gnode]bool)) {
				devarify(r, make(map[*gnode]bool))
			}
		}
		memo[key] = r
		byA[a] = append(byA[a], r)
		byB[b] = append(byB[b], r)
		return r
	}

	roots := make([]*gnode, len(ga))
	for i := range ga {
		roots[i] = lub(ga[i], gb[i])
	}

	// Sharing dropped on one side only: widen the affected results.
	for _, m := range []map[*gnode][]*gnode{byA, byB} {
		for in, outs := range m {
			if !in.shared {
				continue
			}
			distinct := make(map[*gnode]bool)
			for _, o := range outs {
				distinct[o] = true
			}
			if len(distinct) > 1 {
				for o := range distinct {
					devarify(o, make(map[*gnode]bool))
				}
			}
		}
	}
	return treeify(p.Fn, roots)
}

// LeqPattern reports whether p is at least as precise as q: every
// argument type of p is ⊑ the corresponding type of q, and every
// co-sharing implied by q also holds in p.
func LeqPattern(tab *term.Tab, p, q *Pattern) bool {
	if p == nil {
		return true
	}
	if q == nil {
		return false
	}
	if p.Fn != q.Fn {
		return false
	}
	for i := range p.Args {
		if !Leq(tab, p.Args[i], q.Args[i]) {
			return false
		}
	}
	// Sharing: q's groups must be a coarsening of p's (less precise
	// pattern asserts fewer definite aliases). A q without share groups
	// asserts nothing.
	qShares := false
	for _, a := range q.Args {
		if hasAnyShare(a) {
			qShares = true
			break
		}
	}
	if !qShares {
		return true
	}
	return shareSubset(q, p)
}

// shareSubset reports whether every pair of positions co-shared in a is
// also co-shared in b.
func shareSubset(a, b *Pattern) bool {
	pa := sharePositionPairs(a)
	pb := sharePositionPairs(b)
	for k := range pa {
		if !pb[k] {
			return false
		}
	}
	return true
}

// sharePositionPairs maps "path1|path2" keys for every pair of node
// paths in the same share group.
func sharePositionPairs(p *Pattern) map[string]bool {
	groups := make(map[int][]string)
	for i, a := range p.Args {
		var walk func(t *Term, path string)
		walk = func(t *Term, path string) {
			if t.Share != 0 {
				groups[t.Share] = append(groups[t.Share], path)
			}
			for ci, c := range t.children() {
				walk(c, fmt.Sprintf("%s.%d", path, ci))
			}
		}
		walk(a, fmt.Sprintf("%d", i))
	}
	out := make(map[string]bool)
	for _, paths := range groups {
		for i := 0; i < len(paths); i++ {
			for j := i + 1; j < len(paths); j++ {
				a, b := paths[i], paths[j]
				if b < a {
					a, b = b, a
				}
				out[a+"|"+b] = true
			}
		}
	}
	return out
}

// WidenPattern applies Widen — the depth restriction plus the
// cons-over-list collapse — to every argument. Widening can swallow
// share-group occurrences (subtree truncation, the list collapse); a
// var node whose group lost occurrences may be instantiated through the
// now-invisible alias, so it is soundly widened to any before the
// canonical renumbering.
func WidenPattern(tab *term.Tab, p *Pattern, k int) *Pattern {
	if p == nil {
		return nil
	}
	args := make([]*Term, len(p.Args))
	changed := false
	for i, a := range p.Args {
		args[i] = Widen(tab, a, k)
		if args[i] != a {
			changed = true
		}
	}
	w := &Pattern{Fn: p.Fn, Args: args}
	if changed {
		before := shareGroupCounts(p)
		if len(before) > 0 {
			after := shareGroupCounts(w)
			var dropped map[int]bool
			for g, n := range before {
				if after[g] < n {
					if dropped == nil {
						dropped = make(map[int]bool)
					}
					dropped[g] = true
				}
			}
			if dropped != nil {
				w = devarifyDropped(w, dropped)
			}
		}
	}
	return w.Canonical()
}

// shareGroupCounts tallies share-group occurrences per group id.
func shareGroupCounts(p *Pattern) map[int]int {
	var out map[int]int
	var walk func(t *Term)
	walk = func(t *Term) {
		if t.Share != 0 {
			if out == nil {
				out = make(map[int]int)
			}
			out[t.Share]++
		}
		for _, c := range t.children() {
			walk(c)
		}
	}
	for _, a := range p.Args {
		walk(a)
	}
	return out
}

// devarifyDropped widens var nodes of the given share groups to any
// (their swallowed co-occurrences may instantiate them invisibly).
func devarifyDropped(p *Pattern, groups map[int]bool) *Pattern {
	var rew func(t *Term) *Term
	rew = func(t *Term) *Term {
		out := *t
		if t.Share != 0 && groups[t.Share] && t.Kind == Var {
			out.Kind = Any
		}
		if t.Kind == Struct {
			out.Args = make([]*Term, len(t.Args))
			for i, a := range t.Args {
				out.Args[i] = rew(a)
			}
		}
		if t.Kind == List {
			out.Elem = rew(t.Elem)
		}
		return &out
	}
	args := make([]*Term, len(p.Args))
	for i, a := range p.Args {
		args[i] = rew(a)
	}
	return &Pattern{Fn: p.Fn, Args: args}
}

// ParseAbs parses a test-notation abstract pattern such as
// "p(atom, list(g), [g|list(g)])". Leaf names: any, nv, g (or ground),
// const, atom, int, var, empty, []. list(T) is the list type. sh(N, T)
// marks T as member of share group N. Prolog variables also denote
// var-kind leaves sharing a group per variable name.
func ParseAbs(tab *term.Tab, src string) (*Pattern, error) {
	tm, err := parser.ParseTerm(tab, src)
	if err != nil {
		return nil, err
	}
	fn, ok := term.Indicator(tm)
	if !ok {
		return nil, fmt.Errorf("domain: pattern must be callable")
	}
	varGroups := make(map[*term.VarRef]int)
	nextGroup := 1000 // leave low ids for explicit $sh groups
	var conv func(t *term.Term) (*Term, error)
	conv = func(t *term.Term) (*Term, error) {
		switch t.Kind {
		case term.KVar:
			id, ok := varGroups[t.Ref]
			if !ok {
				nextGroup++
				id = nextGroup
				varGroups[t.Ref] = id
			}
			return &Term{Kind: Var, Share: id}, nil
		case term.KInt:
			return MkLeaf(Intg), nil
		case term.KAtom:
			switch tab.Name(t.Fn.Name) {
			case "any":
				return MkLeaf(Any), nil
			case "nv":
				return MkLeaf(NV), nil
			case "g", "ground":
				return MkLeaf(Ground), nil
			case "const":
				return MkLeaf(Const), nil
			case "atom":
				return MkLeaf(Atom), nil
			case "int", "integer":
				return MkLeaf(Intg), nil
			case "var":
				return MkLeaf(Var), nil
			case "empty":
				return MkLeaf(Empty), nil
			case "[]":
				return MkLeaf(Nil), nil
			default:
				return MkLeaf(Atom), nil
			}
		case term.KStruct:
			name := tab.Name(t.Fn.Name)
			if name == "list" && t.Fn.Arity == 1 {
				e, err := conv(t.Args[0])
				if err != nil {
					return nil, err
				}
				return MkListT(e), nil
			}
			if name == "sh" && t.Fn.Arity == 2 {
				if t.Args[0].Kind != term.KInt {
					return nil, fmt.Errorf("domain: sh group must be an integer")
				}
				inner, err := conv(t.Args[1])
				if err != nil {
					return nil, err
				}
				out := *inner
				out.Share = int(t.Args[0].Int)
				return &out, nil
			}
			args := make([]*Term, len(t.Args))
			for i, a := range t.Args {
				c, err := conv(a)
				if err != nil {
					return nil, err
				}
				args[i] = c
			}
			return MkStructT(t.Fn, args...), nil
		}
		return nil, fmt.Errorf("domain: cannot convert term")
	}
	var args []*Term
	if tm.Kind == term.KStruct {
		args = make([]*Term, len(tm.Args))
		for i, a := range tm.Args {
			c, err := conv(a)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
	}
	return (&Pattern{Fn: fn, Args: args}).Canonical(), nil
}
