package domain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"awam/internal/parser"
	"awam/internal/term"
)

// parseConcrete parses a concrete Prolog term for membership tests.
func parseConcrete(tab *term.Tab, src string) (*term.Term, error) {
	return parser.ParseTerm(tab, src)
}

func abs(t *testing.T, tab *term.Tab, src string) *Pattern {
	t.Helper()
	p, err := ParseAbs(tab, src)
	if err != nil {
		t.Fatalf("ParseAbs(%q): %v", src, err)
	}
	return p
}

func absT(t *testing.T, tab *term.Tab, src string) *Term {
	t.Helper()
	return abs(t, tab, "p("+src+")").Args[0]
}

func TestLeafOrdering(t *testing.T) {
	tab := term.NewTab()
	leq := func(a, b string) bool {
		return Leq(tab, absT(t, tab, a), absT(t, tab, b))
	}
	cases := []struct {
		a, b string
		want bool
	}{
		{"empty", "var", true},
		{"var", "any", true},
		{"var", "nv", false},
		{"var", "g", false},
		{"[]", "atom", true},
		{"atom", "const", true},
		{"int", "const", true},
		{"atom", "int", false},
		{"const", "g", true},
		{"g", "nv", true},
		{"nv", "any", true},
		{"any", "nv", false},
		{"g", "const", false},
		{"[]", "list(g)", true},
		{"list(g)", "list(any)", true},
		{"list(any)", "list(g)", false},
		{"list(g)", "g", true},
		{"list(any)", "g", false},
		{"list(any)", "nv", true},
		{"f(g)", "nv", true},
		{"f(g)", "g", true},
		{"f(any)", "g", false},
		{"f(g)", "f(any)", true},
		{"f(g)", "h(g)", false},
		{"[g|list(g)]", "list(g)", true},
		{"[g|list(g)]", "list(any)", true},
		{"[any|list(g)]", "list(g)", false},
		{"[g|var]", "list(g)", false}, // partial list is not a list type
	}
	for _, c := range cases {
		if got := leq(c.a, c.b); got != c.want {
			t.Errorf("Leq(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLubTable(t *testing.T) {
	tab := term.NewTab()
	lub := func(a, b string) string {
		return Lub(tab, absT(t, tab, a), absT(t, tab, b)).String(tab)
	}
	cases := []struct{ a, b, want string }{
		{"atom", "int", "const"},
		{"atom", "g", "g"},
		{"var", "g", "any"},
		{"var", "var", "var"},
		{"g", "nv", "nv"},
		{"f(g)", "f(any)", "f(any)"},
		{"f(g)", "h(g)", "g"},
		{"f(any)", "h(g)", "nv"},
		{"f(g)", "atom", "g"},
		// The list-inference rule (Section 3's alpha-list).
		{"[]", "[g|[]]", "list(g)"},
		{"[]", "[g|list(g)]", "list(g)"},
		{"[int|[]]", "[atom|[]]", "[const|[]]"}, // same-shape cons joins pointwise (more precise than list(const))
		{"list(g)", "[any|list(g)]", "list(any)"},
		{"[]", "list(int)", "list(int)"},
		{"[g|var]", "[]", "nv"}, // partial list cannot join into a list type
		{"list(g)", "f(g)", "g"},
		{"list(any)", "f(g)", "nv"},
	}
	for _, c := range cases {
		if got := lub(c.a, c.b); got != c.want {
			t.Errorf("Lub(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

// genAbs generates a random abstract type for property tests.
func genAbs(r *rand.Rand, tab *term.Tab, depth int) *Term {
	leaves := []Kind{Empty, Var, Nil, Atom, Intg, Const, Ground, NV, Any}
	// Private nodes, not MkLeaf: some consumers decorate the generated
	// tree with Share in place, which must not touch the shared leaf
	// singletons.
	if depth <= 0 || r.Intn(3) == 0 {
		return &Term{Kind: leaves[r.Intn(len(leaves))]}
	}
	switch r.Intn(3) {
	case 0:
		n := r.Intn(2) + 1
		args := make([]*Term, n)
		for i := range args {
			args[i] = genAbs(r, tab, depth-1)
		}
		name := []string{"f", "h", "."}[r.Intn(3)]
		if name == "." {
			n = 2
			args = []*Term{genAbs(r, tab, depth-1), genAbs(r, tab, depth-1)}
		}
		return MkStructT(tab.Func(name, n), args...)
	case 1:
		return MkListT(genAbs(r, tab, depth-1))
	default:
		return &Term{Kind: leaves[r.Intn(len(leaves))]}
	}
}

func TestLatticeProperties(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(7))
	cfg := &quick.Config{MaxCount: 2000}

	// lub is an upper bound and commutative.
	f := func() bool {
		a := genAbs(r, tab, 3)
		b := genAbs(r, tab, 3)
		ab := Lub(tab, a, b)
		ba := Lub(tab, b, a)
		if !Leq(tab, a, ab) || !Leq(tab, b, ab) {
			t.Logf("lub not upper bound: %s ⊔ %s = %s", a.String(tab), b.String(tab), ab.String(tab))
			return false
		}
		if !Leq(tab, ab, ba) || !Leq(tab, ba, ab) {
			t.Logf("lub not commutative: %s vs %s", ab.String(tab), ba.String(tab))
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}

	// lub idempotent: a ⊔ a ≡ a.
	g := func() bool {
		a := genAbs(r, tab, 3)
		aa := Lub(tab, a, a)
		return Leq(tab, aa, a) && Leq(tab, a, aa)
	}
	if err := quick.Check(g, cfg); err != nil {
		t.Error(err)
	}

	// Leq reflexive and transitive on generated triples.
	h := func() bool {
		a := genAbs(r, tab, 3)
		if !Leq(tab, a, a) {
			t.Logf("Leq not reflexive on %s", a.String(tab))
			return false
		}
		b := Lub(tab, a, genAbs(r, tab, 3))
		c := Lub(tab, b, genAbs(r, tab, 3))
		// a ⊑ b and b ⊑ c by construction; check a ⊑ c.
		if !Leq(tab, a, c) {
			t.Logf("Leq not transitive: %s / %s / %s", a.String(tab), b.String(tab), c.String(tab))
			return false
		}
		return true
	}
	if err := quick.Check(h, cfg); err != nil {
		t.Error(err)
	}

	// Widening goes up and bounds depth.
	w := func() bool {
		a := genAbs(r, tab, 5)
		wa := Widen(tab, a, 3)
		if !Leq(tab, a, wa) {
			t.Logf("widen not upper: %s -> %s", a.String(tab), wa.String(tab))
			return false
		}
		return Depth(wa) <= 3
	}
	if err := quick.Check(w, cfg); err != nil {
		t.Error(err)
	}
}

func TestLubAssociativityUpToOrder(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		a := genAbs(r, tab, 3)
		b := genAbs(r, tab, 3)
		c := genAbs(r, tab, 3)
		l1 := Lub(tab, Lub(tab, a, b), c)
		l2 := Lub(tab, a, Lub(tab, b, c))
		return Leq(tab, l1, l2) && Leq(tab, l2, l1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestWidenExamples(t *testing.T) {
	tab := term.NewTab()
	deep := absT(t, tab, "f(f(f(f(f(g)))))")
	w := Widen(tab, deep, 4)
	if got := w.String(tab); got != "f(f(f(g)))" {
		t.Fatalf("Widen ground = %s", got)
	}
	deepVar := absT(t, tab, "f(f(f(f(var))))")
	w2 := Widen(tab, deepVar, 3)
	// The truncated subtree f(f(var)) is non-variable at the top, so nv
	// (not any) is the tightest sound leaf.
	if got := w2.String(tab); got != "f(f(nv))" {
		t.Fatalf("Widen with var = %s", got)
	}
	nvDeep := absT(t, tab, "f(f(h(nv)))")
	w3 := Widen(tab, nvDeep, 2)
	if got := w3.String(tab); got != "f(nv)" {
		t.Fatalf("Widen nv = %s", got)
	}
}

func TestMember(t *testing.T) {
	tab := term.NewTab()
	mk := func(src string) *term.Term {
		tm, err := parseConcrete(tab, src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return tm
	}
	cases := []struct {
		tm   string
		abs  string
		want bool
	}{
		{"a", "atom", true},
		{"a", "int", false},
		{"7", "int", true},
		{"7", "const", true},
		{"f(a)", "g", true},
		{"f(X)", "g", false},
		{"f(X)", "nv", true},
		{"X", "var", true},
		{"f(a)", "f(atom)", true},
		{"f(a)", "f(int)", false},
		{"[1,2,3]", "list(int)", true},
		{"[1,a]", "list(int)", false},
		{"[1|X]", "list(int)", false},
		{"[]", "list(int)", true},
		{"[]", "[]", true},
		{"[f(a)]", "list(g)", true},
		{"anything", "any", true},
		{"a", "empty", false},
	}
	for _, c := range cases {
		if got := Member(tab, mk(c.tm), absT(t, tab, c.abs)); got != c.want {
			t.Errorf("Member(%s, %s) = %v, want %v", c.tm, c.abs, got, c.want)
		}
	}
}

// TestMemberRespectsLub: members of a or b are members of lub(a,b).
func TestMemberRespectsLub(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(3))
	witnesses := []string{"a", "7", "[]", "f(a)", "f(X)", "X", "[1,2]", "[a|X]", "h(f(a), 1)"}
	f := func() bool {
		a := genAbs(r, tab, 3)
		b := genAbs(r, tab, 3)
		l := Lub(tab, a, b)
		for _, w := range witnesses {
			tm, err := parseConcrete(tab, w)
			if err != nil {
				return false
			}
			if (Member(tab, tm, a) || Member(tab, tm, b)) && !Member(tab, tm, l) {
				t.Logf("witness %s in %s or %s but not in lub %s", w, a.String(tab), b.String(tab), l.String(tab))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestPatternKeyCanonical(t *testing.T) {
	tab := term.NewTab()
	p1 := abs(t, tab, "p(sh(3, any), sh(3, any))")
	p2 := abs(t, tab, "p(sh(8, any), sh(8, any))")
	if p1.Key() != p2.Key() {
		t.Fatal("keys should be canonical under group renaming")
	}
	p3 := abs(t, tab, "p(any, any)")
	if p1.Key() == p3.Key() {
		t.Fatal("shared and unshared patterns must have different keys")
	}
}

func TestPatternCanonicalDropsSingletons(t *testing.T) {
	tab := term.NewTab()
	p := abs(t, tab, "p(sh(4, any), atom)")
	if p.Args[0].Share != 0 {
		t.Fatal("singleton share group should be dropped")
	}
}

func TestArgSharePairs(t *testing.T) {
	tab := term.NewTab()
	p := abs(t, tab, "p(sh(1, any), f(sh(1, any), sh(2, g)), sh(2, g))")
	pairs := p.ArgSharePairs()
	if len(pairs) != 2 || pairs[0] != [2]int{0, 1} || pairs[1] != [2]int{1, 2} {
		t.Fatalf("ArgSharePairs = %v", pairs)
	}
}

func TestLubPatternPreservesCommonSharing(t *testing.T) {
	tab := term.NewTab()
	p := abs(t, tab, "p(sh(1, g), sh(1, g))")
	q := abs(t, tab, "p(sh(1, g), sh(1, g))")
	l := LubPattern(tab, p, q)
	if l.Args[0].Share == 0 || l.Args[0].Share != l.Args[1].Share {
		t.Fatalf("common sharing lost: %s", l.String(tab))
	}
}

func TestLubPatternDropsOneSidedSharingAndWidensVar(t *testing.T) {
	tab := term.NewTab()
	// In p the two args are the same variable; in q they are distinct
	// variables. The lub must not claim definite sharing, and must widen
	// var to any (a one-sided alias can instantiate the other side).
	p := abs(t, tab, "p(sh(1, var), sh(1, var))")
	q := abs(t, tab, "p(var, var)")
	l := LubPattern(tab, p, q)
	if l.Args[0].Share != 0 && l.Args[0].Share == l.Args[1].Share {
		t.Fatalf("one-sided sharing must be dropped: %s", l.String(tab))
	}
	if l.Args[0].Kind != Any || l.Args[1].Kind != Any {
		t.Fatalf("vars with dropped sharing must widen to any: %s", l.String(tab))
	}
}

func TestLubPatternNonVarKeepsTypeOnDroppedSharing(t *testing.T) {
	tab := term.NewTab()
	// ground is closed under instantiation, so dropping one-sided
	// sharing may keep the ground type.
	p := abs(t, tab, "p(sh(1, g), sh(1, g))")
	q := abs(t, tab, "p(g, g)")
	l := LubPattern(tab, p, q)
	if l.Args[0].Kind != Ground || l.Args[1].Kind != Ground {
		t.Fatalf("ground should survive dropped sharing: %s", l.String(tab))
	}
	if l.Args[0].Share != 0 {
		t.Fatalf("sharing should be dropped: %s", l.String(tab))
	}
}

func TestLubPatternBottom(t *testing.T) {
	tab := term.NewTab()
	p := abs(t, tab, "p(atom)")
	if got := LubPattern(tab, nil, p); !got.Equal(p) {
		t.Fatal("lub with bottom should return the other pattern")
	}
	if got := LubPattern(tab, p, nil); !got.Equal(p) {
		t.Fatal("lub with bottom (right) should return the other pattern")
	}
	if got := LubPattern(tab, nil, nil); got != nil {
		t.Fatal("lub of bottoms should be bottom")
	}
}

func TestLubPatternInfersListAcrossClauses(t *testing.T) {
	tab := term.NewTab()
	// nreverse's two clauses: one returns [], the other [g|list(g)].
	p := abs(t, tab, "p([])")
	q := abs(t, tab, "p([g|list(g)])")
	l := LubPattern(tab, p, q)
	if got := l.Args[0].String(tab); got != "list(g)" {
		t.Fatalf("list inference over clauses = %s", got)
	}
}

func TestLeqPattern(t *testing.T) {
	tab := term.NewTab()
	p := abs(t, tab, "p(sh(1, g), sh(1, g))")
	q := abs(t, tab, "p(g, g)")
	if !LeqPattern(tab, p, q) {
		t.Fatal("more sharing should be more precise")
	}
	if LeqPattern(tab, q, p) {
		t.Fatal("unshared is not below shared")
	}
	r := abs(t, tab, "p(any, any)")
	if !LeqPattern(tab, q, r) {
		t.Fatal("g ⊑ any pointwise")
	}
}

// TestLubPatternMonotoneKeys: repeated lubbing must reach a fixpoint
// (keys eventually stabilize) — the analyzer's termination argument.
func TestLubPatternMonotoneKeys(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(99))
	fn := tab.Func("p", 2)
	genPat := func() *Pattern {
		return (&Pattern{Fn: fn, Args: []*Term{genAbs(r, tab, 2), genAbs(r, tab, 2)}}).Canonical()
	}
	for trial := 0; trial < 200; trial++ {
		acc := genPat()
		for i := 0; i < 50; i++ {
			next := LubPattern(tab, acc, genPat())
			if !LeqPattern(tab, acc, next) {
				t.Fatalf("lub not ascending: %s then %s", acc.String(tab), next.String(tab))
			}
			acc = next
		}
	}
}

func TestParseAbsErrors(t *testing.T) {
	tab := term.NewTab()
	for _, src := range []string{"3", "X", "p(sh(x, any))", "p((("} {
		if _, err := ParseAbs(tab, src); err == nil {
			t.Errorf("ParseAbs(%q): expected error", src)
		}
	}
}

// TestLubPatternIsUpperBound: the pattern-level lub dominates both
// inputs under LeqPattern, on randomly generated shared patterns.
func TestLubPatternIsUpperBound(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(17))
	fn := tab.Func("p", 3)
	gen := func() *Pattern {
		args := make([]*Term, 3)
		for i := range args {
			args[i] = genAbs(r, tab, 2)
		}
		// Inject some sharing between open leaves.
		var open []*Term
		var collect func(t *Term)
		collect = func(t *Term) {
			// Only leaf kinds: a shared composite must be the identical
			// subtree, which random generation cannot guarantee.
			if t.Kind.Open() && t.Kind != List {
				open = append(open, t)
			}
			for _, c := range t.children() {
				collect(c)
			}
		}
		for _, a := range args {
			collect(a)
		}
		// Share only leaves of the same kind: a group denotes one
		// instance and therefore has one type.
		byKind := make(map[Kind][]*Term)
		for _, o := range open {
			byKind[o.Kind] = append(byKind[o.Kind], o)
		}
		for _, group := range byKind {
			if len(group) >= 2 && r.Intn(2) == 0 {
				group[0].Share = 1
				group[1].Share = 1
				break
			}
		}
		return NewPattern(fn, args).Canonical()
	}
	for i := 0; i < 1500; i++ {
		p, q := gen(), gen()
		l := LubPattern(tab, p, q)
		if !LeqPattern(tab, p, l) || !LeqPattern(tab, q, l) {
			t.Fatalf("lub not an upper bound:\n p=%s\n q=%s\n l=%s",
				p.String(tab), q.String(tab), l.String(tab))
		}
	}
}

func TestWidenPatternIdempotent(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(23))
	fn := tab.Func("p", 2)
	for i := 0; i < 1000; i++ {
		p := NewPattern(fn, []*Term{genAbs(r, tab, 4), genAbs(r, tab, 4)}).Canonical()
		w1 := WidenPattern(tab, p, 3)
		w2 := WidenPattern(tab, w1, 3)
		if !w1.Equal(w2) {
			t.Fatalf("widen not idempotent: %s vs %s", w1.String(tab), w2.String(tab))
		}
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	tab := term.NewTab()
	p := abs(t, tab, "p(sh(1, g), sh(1, g), sh(2, any), sh(2, any))")
	c1 := p.Canonical()
	c2 := c1.Canonical()
	if c1.Key() != c2.Key() {
		t.Fatal("Canonical not idempotent")
	}
}
