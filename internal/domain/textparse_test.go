package domain

import (
	"math/rand"
	"testing"

	"awam/internal/term"
)

// TestParseAbsFastAgreesWithParseAbs: on every string PatternText can
// emit, the fast scanner and the full parser must produce equal
// patterns — the fast path serves the same cache records the slow path
// wrote. Inputs are random patterns (shared, nested, quoted functors)
// round-tripped through PatternText.
func TestParseAbsFastAgreesWithParseAbs(t *testing.T) {
	tab := term.NewTab()
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		args := make([]*Term, 1+r.Intn(3))
		for j := range args {
			args[j] = genAbs(r, tab, 3)
		}
		p := (&Pattern{Fn: tab.Func("p", len(args)), Args: args}).Canonical()
		text := PatternText(tab, p)
		fast, ok := ParseAbsFast(tab, text)
		if !ok {
			t.Fatalf("ParseAbsFast rejected PatternText output %q", text)
		}
		slow, err := ParseAbs(tab, text)
		if err != nil {
			t.Fatalf("ParseAbs(%q): %v", text, err)
		}
		if !fast.Equal(slow) {
			t.Fatalf("ParseAbsFast(%q) = %s, ParseAbs = %s",
				text, fast.String(tab), slow.String(tab))
		}
		if !fast.Equal(p) {
			t.Fatalf("round-trip changed pattern: %q became %s", text, fast.String(tab))
		}
	}
}

// TestParseAbsFastFixedCases covers the notation's corners directly,
// including quoted functors with escapes and the explicit share form.
func TestParseAbsFastFixedCases(t *testing.T) {
	tab := term.NewTab()
	for _, src := range []string{
		"p",
		"p(any, nv, g, const, atom, int, var, empty, [])",
		"p(list(g), [g|list(g)], f(atom, var))",
		"p(sh(1, var), sh(1, var), sh(2, list(any)))",
		"p(sh(3, list(sh(4, var))))",
		"'Odd name'(g)",
		`p('it\'s'(g), '')`,
		"p(weird_atom)", // unknown bare atom defaults to the atom leaf
		"p([g|[g|[]]])",
	} {
		fast, ok := ParseAbsFast(tab, src)
		if !ok {
			t.Fatalf("ParseAbsFast(%q): rejected", src)
		}
		slow, err := ParseAbs(tab, src)
		if err != nil {
			t.Fatalf("ParseAbs(%q): %v", src, err)
		}
		if !fast.Equal(slow) {
			t.Errorf("ParseAbsFast(%q) = %s, ParseAbs = %s",
				src, fast.String(tab), slow.String(tab))
		}
	}
}

// TestParseAbsFastRejects: inputs outside the PatternText notation must
// be declined (ok=false) so ParseAbsQuick defers to ParseAbs — which
// either accepts them (Prolog variables, sh arity mismatches becoming
// plain structs) or produces its usual errors.
func TestParseAbsFastRejects(t *testing.T) {
	tab := term.NewTab()
	for _, src := range []string{
		"",
		"3",
		"X",
		"p(X)",          // Prolog variable: ParseAbs-only
		"p(3)",          // bare integer: ParseAbs-only
		"p(sh(x, any))", // malformed share group
		"p(sh(1, g, g))",
		"p(list(g, g))",
		"p(",
		"p(g))",
		"p('unterminated",
		"p(g) trailing",
	} {
		if _, ok := ParseAbsFast(tab, src); ok {
			t.Errorf("ParseAbsFast(%q): expected rejection", src)
		}
	}
}

// TestParseAbsQuickMatchesParseAbsOnRejects: the wrapper must behave
// exactly like ParseAbs for inputs the fast scanner declines.
func TestParseAbsQuickMatchesParseAbsOnRejects(t *testing.T) {
	tab := term.NewTab()
	for _, src := range []string{"p(X, X)", "p(sh(1, g, g))", "p(list(g, g))", "q(3)"} {
		quick, qerr := ParseAbsQuick(tab, src)
		slow, serr := ParseAbs(tab, src)
		if (qerr == nil) != (serr == nil) {
			t.Fatalf("ParseAbsQuick(%q) err=%v, ParseAbs err=%v", src, qerr, serr)
		}
		if qerr == nil && !quick.Equal(slow) {
			t.Errorf("ParseAbsQuick(%q) = %s, ParseAbs = %s",
				src, quick.String(tab), slow.String(tab))
		}
	}
}
