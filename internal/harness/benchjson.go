package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// This file backs `benchtab -json`: a machine-readable benchmark report
// (BENCH_PR3.json at the repo root) so perf PRs can record before/after
// numbers in a diffable artifact instead of prose. The measurements are
// hand-rolled rather than testing.B-based — cmd/benchtab is a plain
// binary — but report the same quantities: ns/op, bytes/op, allocs/op,
// plus the extension-table traffic from the observability layer.

// BenchEntry is one measured (program, configuration) cell.
type BenchEntry struct {
	// Name is the workload, e.g. "wide_256" or a Table 1 benchmark.
	Name string `json:"name"`
	// Config names the analyzer configuration: "naive" (paper default),
	// "worklist", or "parallel-N".
	Config string `json:"config"`
	// Iters is the number of timed runs behind the per-op averages.
	Iters int `json:"iters"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror testing.B semantics
	// (one op = one full AnalyzeMain on a pre-compiled module).
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// TableOps is the extension-table traffic of one run: lookups that
	// hit + lookups that missed + inserts + summary updates.
	TableOps int64 `json:"table_ops"`
	// TableSize is the converged table's entry count; Steps the abstract
	// instructions executed during the fixpoint. Both are
	// schedule-invariant, so reruns must reproduce them exactly.
	TableSize int   `json:"table_size"`
	Steps     int64 `json:"steps"`
	// Seed is the workload's generator seed (benchtab -seed); omitted
	// for the deterministic legacy workloads so seed-0 reports stay
	// byte-identical to earlier revisions.
	Seed int64 `json:"seed,omitempty"`
}

// BenchReport is the top-level JSON document.
type BenchReport struct {
	// Label identifies the measured revision, e.g. "PR3".
	Label  string `json:"label"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// Quick is true when the report was produced with -quick (single
	// iteration; numbers are indicative, not stable).
	Quick bool `json:"quick"`
	// Seed is the generator seed used for the wide scaling workloads;
	// zero (omitted) means the fixed legacy programs.
	Seed    int64        `json:"seed,omitempty"`
	Entries []BenchEntry `json:"entries"`
	// Incremental holds the summary-cache cold-versus-warm measurements
	// (absent in reports from revisions before the incremental engine).
	Incremental []IncrementalEntry `json:"incremental,omitempty"`
	// Optimize holds the machine-runtime speedups from the gated
	// optimizer pipeline (absent before the pass pipeline existed).
	Optimize []OptimizeEntry `json:"optimize,omitempty"`
	// Fabric holds the distributed summary fabric measurements: a
	// one-edit re-analysis served over a peer daemon's store routes
	// versus a scratch run, plus the forced-outage identity check
	// (absent before the fabric existed).
	Fabric []FabricEntry `json:"fabric,omitempty"`
	// Specialize holds the specialized-transfer-stream ablation
	// (off / flatten / fuse / full; absent before the specializer
	// existed).
	Specialize []SpecializeEntry `json:"specialize,omitempty"`
	// Backward holds the demand-driven backward engine measurements:
	// cold versus store-warm demand queries and a one-edit re-query on
	// the wide workload (absent before the backward engine existed).
	Backward []BackwardEntry `json:"backward,omitempty"`
}

// benchConfigs are the engine configurations the JSON report sweeps on
// the wide programs — the rows EXPERIMENTS.md E13/E16 track.
func benchConfigs() []struct {
	label string
	cfg   core.Config
} {
	worklist := core.DefaultConfig()
	worklist.Strategy = core.StrategyWorklist
	par4 := core.DefaultConfig()
	par4.Strategy = core.StrategyParallel
	par4.Parallelism = 4
	return []struct {
		label string
		cfg   core.Config
	}{
		{"worklist", worklist},
		{"parallel-4", par4},
	}
}

// measureJSON times repeated AnalyzeMain runs of one compiled module
// and fills a BenchEntry. Allocation counters come from
// runtime.ReadMemStats deltas around the timed loop, which over-counts
// slightly versus testing.B (background allocation is attributed to
// us), so treat allocs/op as comparable between benchtab runs, not
// against `go test -bench` output.
func measureJSON(name, label string, mod *wam.Module, cfg core.Config, quick bool) (BenchEntry, error) {
	e := BenchEntry{Name: name, Config: label}

	// Untimed run: correctness check + schedule-invariant counters.
	res, err := core.NewWith(mod, cfg).AnalyzeMain()
	if err != nil {
		return e, fmt.Errorf("%s/%s: %w", name, label, err)
	}
	e.TableSize = res.TableSize
	e.Steps = res.Steps
	if res.Metrics != nil {
		m := res.Metrics
		e.TableOps = m.TableHits + m.TableMisses + m.TableInserts + m.TableUpdates
	}

	// Pick an iteration count from a single timed estimate.
	iters := 1
	if !quick {
		start := time.Now()
		if _, err := core.NewWith(mod, cfg).AnalyzeMain(); err != nil {
			return e, err
		}
		once := time.Since(start)
		const target = 2 * time.Second
		if once < target {
			iters = int(target / (once + 1))
		}
		if iters < 3 {
			iters = 3
		}
		if iters > 300 {
			iters = 300
		}
	}
	e.Iters = iters

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := core.NewWith(mod, cfg).AnalyzeMain(); err != nil {
			return e, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	e.NsPerOp = elapsed.Nanoseconds() / int64(iters)
	e.BytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / int64(iters)
	e.AllocsPerOp = int64(m1.Mallocs-m0.Mallocs) / int64(iters)
	return e, nil
}

func compileBench(p bench.Program) (*wam.Module, error) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, p.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: parse: %w", p.Name, err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", p.Name, err)
	}
	return mod, nil
}

// MeasureBenchJSON produces the benchmark report: the wide_256/wide_512
// scaling programs under the worklist and parallel-4 engines, plus the
// paper's Table 1 suite under the default (naive, linear-table)
// configuration. progress, when non-nil, receives one line per cell.
// seed perturbs the wide workloads via bench.WideProgramSeeded; 0 keeps
// the fixed legacy programs (the committed BENCH_PR3.json baseline).
// The seed is echoed in both the progress lines and the report so any
// failure or anomaly on a randomized workload can be reproduced.
func MeasureBenchJSON(label string, quick bool, seed int64, progress io.Writer) (*BenchReport, error) {
	rep := &BenchReport{
		Label:  label,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Quick:  quick,
		Seed:   seed,
	}
	say := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}
	for _, fam := range []int{256, 512} {
		p := bench.WideProgramSeeded(fam, seed)
		mod, err := compileBench(p)
		if err != nil {
			return nil, err
		}
		for _, c := range benchConfigs() {
			say("  %s/%s (seed=%d)...\n", p.Name, c.label, p.Seed)
			e, err := measureJSON(p.Name, c.label, mod, c.cfg, quick)
			if err != nil {
				return nil, err
			}
			e.Seed = p.Seed
			rep.Entries = append(rep.Entries, e)
		}
	}
	for _, p := range bench.Programs {
		mod, err := compileBench(p)
		if err != nil {
			return nil, err
		}
		say("  %s/naive...\n", p.Name)
		e, err := measureJSON(p.Name, "naive", mod, core.DefaultConfig(), quick)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, e)
	}
	// Incremental cold-vs-warm is only meaningful on the deterministic
	// workload: the committed report tracks its speedup across revisions.
	if seed == 0 {
		ie, err := MeasureIncremental(512, quick, progress)
		if err != nil {
			return nil, err
		}
		rep.Incremental = append(rep.Incremental, *ie)
		oe, err := MeasureOptimizeJSON(quick, progress)
		if err != nil {
			return nil, err
		}
		rep.Optimize = oe
		fe, err := MeasureFabric(512, quick, progress)
		if err != nil {
			return nil, err
		}
		rep.Fabric = append(rep.Fabric, *fe)
		se, err := MeasureSpecialize(quick, progress)
		if err != nil {
			return nil, err
		}
		rep.Specialize = se
		be, err := MeasureBackward(512, quick, progress)
		if err != nil {
			return nil, err
		}
		rep.Backward = append(rep.Backward, *be)
	}
	return rep, nil
}

// WriteBenchJSON serializes the report with stable indentation (the
// file is committed; diffs should be line-oriented).
func WriteBenchJSON(w io.Writer, rep *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
