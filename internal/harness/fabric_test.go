package harness

import "testing"

// TestMeasureFabricSmall: the fabric measurement machinery on a small
// wide program in quick mode — priming over the wire, byte-identity of
// every fabric-served run, and the forced mid-run outage check all run
// inside MeasureFabric and fail it loudly.
func TestMeasureFabricSmall(t *testing.T) {
	e, err := MeasureFabric(32, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "wide_32" {
		t.Fatalf("entry name %q", e.Name)
	}
	if e.SCCs == 0 || e.WarmSCCs == 0 || e.WarmSCCs >= e.SCCs {
		t.Fatalf("warm accounting: %d/%d (want part warm, part dirty)", e.WarmSCCs, e.SCCs)
	}
	if e.RemoteLoads == 0 || e.RemoteRoundTrips == 0 {
		t.Fatalf("no fabric traffic: %+v", e)
	}
	if !e.OutageIdentical || e.OutageErrors == 0 {
		t.Fatalf("outage check: identical=%t errors=%d", e.OutageIdentical, e.OutageErrors)
	}
	if e.ColdNsPerOp <= 0 || e.FabricNsPerOp <= 0 {
		t.Fatalf("timings: cold=%d fabric=%d", e.ColdNsPerOp, e.FabricNsPerOp)
	}
}
