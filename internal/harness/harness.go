// Package harness measures the analyzers over the benchmark suite and
// renders the paper's evaluation tables: Table 1 (analyzer efficiency),
// Table 2 (speed ratios; the 1992 hardware sweep is replaced by an
// analyzer-configuration sweep, see DESIGN.md) and the term-depth
// ablation.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"awam/internal/baseline"
	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/parser"
	"awam/internal/plmeta"
	"awam/internal/term"
	"awam/internal/transrun"
)

// isGroundArg reports whether an inferred argument type is provably
// ground — the ablation's precision proxy.
func isGroundArg(tab *term.Tab, a *domain.Term) bool {
	return domain.Leq(tab, a, domain.MkLeaf(domain.Ground))
}

// Metrics is one measured row of the evaluation tables.
type Metrics struct {
	Name  string
	Args  int // total argument places (paper's "Args")
	Preds int // defined predicates (paper's "Preds")

	Size int   // static WAM code size in instructions
	Exec int64 // abstract WAM instructions executed during analysis

	TableSize  int
	Iterations int

	// Extension-table traffic and peak working set during the compiled
	// analysis, from the observability layer (core.Result.Metrics).
	TableHits    int64
	TableMisses  int64
	TableUpdates int64
	HeapCells    int

	CompileMS float64 // Prolog -> WAM compile time ("PLM" column stand-in)
	OursMS    float64 // compiled analyzer (internal/core)
	HostedMS  float64 // Prolog-hosted analyzer on the WAM ("Aquarius" stand-in)
	MetaGoMS  float64 // Go meta-interpreting analyzer (internal/baseline)
	// TransformedMS is the paper's "transforming approach": the analysis
	// partially evaluated into a Prolog program, run on the WAM.
	TransformedMS float64
}

// SpeedupHosted is the Table 1 speed-up factor: Prolog-hosted analysis
// time over compiled analysis time.
func (m *Metrics) SpeedupHosted() float64 {
	if m.OursMS == 0 {
		return 0
	}
	return m.HostedMS / m.OursMS
}

// SpeedupMetaGo compares against the Go meta-interpreter.
func (m *Metrics) SpeedupMetaGo() float64 {
	if m.OursMS == 0 {
		return 0
	}
	return m.MetaGoMS / m.OursMS
}

// MeasureOptions tune the harness.
type MeasureOptions struct {
	// MinSampleTime is the per-measurement budget; runs repeat until it
	// is reached (the paper averaged 100-1000 iterations similarly).
	MinSampleTime time.Duration
	// CoreConfig configures the compiled analyzer.
	CoreConfig core.Config
	// SkipHosted skips the (slowest) Prolog-hosted baseline.
	SkipHosted bool
	// SkipMetaGo skips the Go meta-interpreter baseline.
	SkipMetaGo bool
}

// DefaultMeasureOptions uses the paper's analyzer configuration.
func DefaultMeasureOptions() MeasureOptions {
	return MeasureOptions{
		MinSampleTime: 50 * time.Millisecond,
		CoreConfig:    core.DefaultConfig(),
	}
}

// timeIt measures f's time per run by repeating until the sample budget
// is spent, returning milliseconds per run.
func timeIt(min time.Duration, f func() error) (float64, error) {
	// Warm-up and single-run estimate.
	start := time.Now()
	if err := f(); err != nil {
		return 0, err
	}
	once := time.Since(start)
	reps := 1
	if once < min {
		reps = int(min / (once + 1))
		if reps < 1 {
			reps = 1
		}
		if reps > 2000 {
			reps = 2000
		}
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	total := time.Since(start)
	return float64(total.Microseconds()) / float64(reps) / 1000.0, nil
}

// Measure runs all measurements for one benchmark program.
func Measure(p bench.Program, opts MeasureOptions) (*Metrics, error) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, p.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: parse: %w", p.Name, err)
	}
	m := &Metrics{
		Name:  p.Name,
		Args:  prog.ArgPlaces(),
		Preds: prog.NumPreds(),
	}

	// Compile time (the PLM column) and the module used for analysis.
	mod, err := compiler.CompileWith(tab, prog, compiler.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", p.Name, err)
	}
	m.Size = mod.Size()
	m.CompileMS, err = timeIt(opts.MinSampleTime, func() error {
		_, err := compiler.CompileWith(tab, prog, compiler.DefaultOptions())
		return err
	})
	if err != nil {
		return nil, err
	}

	// Compiled analysis (Ours).
	res, err := core.NewWith(mod, opts.CoreConfig).AnalyzeMain()
	if err != nil {
		return nil, fmt.Errorf("%s: analyze: %w", p.Name, err)
	}
	m.Exec = res.Steps
	m.TableSize = res.TableSize
	m.Iterations = res.Iterations
	if res.Metrics != nil {
		m.TableHits = res.Metrics.TableHits
		m.TableMisses = res.Metrics.TableMisses
		m.TableUpdates = res.Metrics.TableUpdates
		m.HeapCells = res.Metrics.HeapHighWater
	}
	m.OursMS, err = timeIt(opts.MinSampleTime, func() error {
		_, err := core.NewWith(mod, opts.CoreConfig).AnalyzeMain()
		return err
	})
	if err != nil {
		return nil, err
	}

	// Prolog-hosted analyzer (Aquarius stand-in).
	if !opts.SkipHosted {
		runner, err := plmeta.NewRunner(tab, prog)
		if err != nil {
			return nil, fmt.Errorf("%s: hosted: %w", p.Name, err)
		}
		m.HostedMS, err = timeIt(opts.MinSampleTime, func() error {
			_, _, _, err := runner.Run()
			return err
		})
		if err != nil {
			return nil, err
		}
	}

	// Transformed-program analyzer (the paper's transforming approach).
	if !opts.SkipHosted {
		tr, err := transrun.NewRunner(tab, prog)
		if err != nil {
			return nil, fmt.Errorf("%s: transformed: %w", p.Name, err)
		}
		m.TransformedMS, err = timeIt(opts.MinSampleTime, func() error {
			_, _, _, err := tr.Run()
			return err
		})
		if err != nil {
			return nil, err
		}
	}

	// Go meta-interpreter.
	if !opts.SkipMetaGo {
		m.MetaGoMS, err = timeIt(opts.MinSampleTime, func() error {
			_, err := baseline.New(tab, prog).AnalyzeMain()
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MeasureAll measures every Table 1 benchmark in order.
func MeasureAll(opts MeasureOptions) ([]*Metrics, error) {
	out := make([]*Metrics, 0, len(bench.Programs))
	for _, p := range bench.Programs {
		m, err := Measure(p, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// WriteTable1 renders the paper's Table 1 with our columns: the hosted
// Prolog analyzer stands in for Aquarius, our compiler for PLM.
func WriteTable1(w io.Writer, rows []*Metrics) {
	fmt.Fprintln(w, "Table 1: The Efficiency of Dataflow Analyzers (reproduction)")
	fmt.Fprintln(w, "  Hosted  = mode analyzer written in Prolog, run on the concrete WAM (Aquarius stand-in)")
	fmt.Fprintln(w, "  Compile = Prolog->WAM compilation (PLM stand-in)")
	fmt.Fprintln(w, "  Ours    = compiled abstract-WAM analyzer (types+modes+aliasing, k=4)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %5s %6s %10s %10s %6s %7s %10s %9s\n",
		"Benchmark", "Args", "Preds", "Hosted ms", "Compile ms", "Size", "Exec", "Ours ms", "Speed-Up")
	var sum float64
	n := 0
	for _, m := range rows {
		fmt.Fprintf(w, "%-10s %5d %6d %10.3f %10.3f %6d %7d %10.4f %9.1f\n",
			m.Name, m.Args, m.Preds, m.HostedMS, m.CompileMS, m.Size, m.Exec, m.OursMS, m.SpeedupHosted())
		sum += m.SpeedupHosted()
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "%-10s %62s %9.1f\n", "average", "", sum/float64(n))
	}
}

// WriteObservability renders the per-benchmark instrumentation columns:
// extension-table traffic and peak heap, the cost factors the aggregate
// Table 1 numbers hide.
func WriteObservability(w io.Writer, rows []*Metrics) {
	fmt.Fprintln(w, "Observability: extension-table traffic and working set (fixpoint phase)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %7s %7s %7s %8s %8s %10s\n",
		"Benchmark", "Exec", "Table", "Hits", "Misses", "Updates", "Heap cells")
	for _, m := range rows {
		fmt.Fprintf(w, "%-10s %7d %7d %7d %8d %8d %10d\n",
			m.Name, m.Exec, m.TableSize, m.TableHits, m.TableMisses, m.TableUpdates, m.HeapCells)
	}
}

// ConfigRatios is one configuration column of Table 2.
type ConfigRatios struct {
	Label  string
	Ratios []float64 // per benchmark: hosted-time / this-config-time
}

// WriteTable2 renders the Table 2 substitute: the paper's platform sweep
// becomes a configuration sweep, with per-benchmark speed ratios
// normalized to the hosted analyzer = 1 and the average "Index" row.
func WriteTable2(w io.Writer, rows []*Metrics, configs []ConfigRatios) {
	fmt.Fprintln(w, "Table 2: Speed ratios, hosted analyzer = 1 (configuration sweep")
	fmt.Fprintln(w, "replaces the 1992 hardware sweep; see DESIGN.md substitutions)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %8s", "Benchmark", "Hosted")
	for _, c := range configs {
		fmt.Fprintf(w, " %10s", c.Label)
	}
	fmt.Fprintln(w)
	sums := make([]float64, len(configs))
	for i, m := range rows {
		fmt.Fprintf(w, "%-10s %8.1f", m.Name, 1.0)
		for j, c := range configs {
			fmt.Fprintf(w, " %10.1f", c.Ratios[i])
			sums[j] += c.Ratios[i]
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s %8.1f", "average", 1.0)
	for j := range configs {
		fmt.Fprintf(w, " %10.1f", sums[j]/float64(len(rows)))
	}
	fmt.Fprintln(w)
}

// MeasureConfigs builds the Table 2 configuration sweep: for each
// analyzer configuration, per-benchmark speed ratios against the hosted
// analyzer.
func MeasureConfigs(opts MeasureOptions, rows []*Metrics) ([]ConfigRatios, error) {
	type cfgDef struct {
		label string
		cfg   core.Config
	}
	defs := []cfgDef{
		{"k=4", core.DefaultConfig()},
		{"k=2", core.Config{Depth: 2, Table: core.TableLinear, Indexing: true}},
		{"k=8", core.Config{Depth: 8, Table: core.TableLinear, Indexing: true}},
		{"hash-ET", core.Config{Depth: 4, Table: core.TableHash, Indexing: true}},
		{"no-index", core.Config{Depth: 4, Table: core.TableLinear, Indexing: false}},
		{"worklist", core.Config{Depth: 4, Table: core.TableLinear, Indexing: true,
			Strategy: core.StrategyWorklist}},
	}
	out := make([]ConfigRatios, 0, len(defs)+1)
	for _, d := range defs {
		c := ConfigRatios{Label: d.label, Ratios: make([]float64, len(rows))}
		for i, row := range rows {
			p, _ := bench.ByName(row.Name)
			tab := term.NewTab()
			prog, err := parser.ParseProgram(tab, p.Source)
			if err != nil {
				return nil, err
			}
			mod, err := compiler.Compile(tab, prog)
			if err != nil {
				return nil, err
			}
			ms, err := timeIt(opts.MinSampleTime, func() error {
				_, err := core.NewWith(mod, d.cfg).AnalyzeMain()
				return err
			})
			if err != nil {
				return nil, err
			}
			if ms > 0 {
				c.Ratios[i] = row.HostedMS / ms
			}
		}
		out = append(out, c)
	}
	// The Go meta-interpreter and the transformed program as final
	// columns.
	metaCol := ConfigRatios{Label: "meta-Go", Ratios: make([]float64, len(rows))}
	trCol := ConfigRatios{Label: "transfrm", Ratios: make([]float64, len(rows))}
	for i, row := range rows {
		if row.MetaGoMS > 0 {
			metaCol.Ratios[i] = row.HostedMS / row.MetaGoMS
		}
		if row.TransformedMS > 0 {
			trCol.Ratios[i] = row.HostedMS / row.TransformedMS
		}
	}
	out = append(out, trCol, metaCol)
	return out, nil
}

// AblationRow measures the depth-k precision/cost tradeoff (E9).
type AblationRow struct {
	Name      string
	Depth     int
	MS        float64
	TableSize int
	Exec      int64
	GroundPct float64 // fraction of success-pattern argument positions proven ground
}

// MeasureAblation sweeps the term-depth restriction.
func MeasureAblation(opts MeasureOptions, depths []int) ([]AblationRow, error) {
	var out []AblationRow
	for _, p := range bench.Programs {
		tab := term.NewTab()
		prog, err := parser.ParseProgram(tab, p.Source)
		if err != nil {
			return nil, err
		}
		mod, err := compiler.Compile(tab, prog)
		if err != nil {
			return nil, err
		}
		for _, k := range depths {
			cfg := core.Config{Depth: k, Table: core.TableLinear, Indexing: true}
			res, err := core.NewWith(mod, cfg).AnalyzeMain()
			if err != nil {
				return nil, err
			}
			ms, err := timeIt(opts.MinSampleTime, func() error {
				_, err := core.NewWith(mod, cfg).AnalyzeMain()
				return err
			})
			if err != nil {
				return nil, err
			}
			out = append(out, AblationRow{
				Name: p.Name, Depth: k, MS: ms,
				TableSize: res.TableSize, Exec: res.Steps,
				GroundPct: groundFraction(tab, res),
			})
		}
	}
	return out, nil
}

func groundFraction(tab *term.Tab, res *core.Result) float64 {
	total, ground := 0, 0
	for _, e := range res.Entries {
		if e.Succ == nil {
			continue
		}
		for _, a := range e.Succ.Args {
			total++
			if isGroundArg(tab, a) {
				ground++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ground) / float64(total)
}

// WriteAblation renders the depth sweep.
func WriteAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation: term-depth restriction k (cost vs precision)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %4s %10s %7s %7s %8s\n", "Benchmark", "k", "ms", "Exec", "Table", "ground%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %4d %10.4f %7d %7d %7.1f%%\n",
			r.Name, r.Depth, r.MS, r.Exec, r.TableSize, 100*r.GroundPct)
	}
}

// SummaryLine gives a one-line digest used by tests.
func SummaryLine(rows []*Metrics) string {
	var b strings.Builder
	for _, m := range rows {
		fmt.Fprintf(&b, "%s=%.1fx ", m.Name, m.SpeedupHosted())
	}
	return strings.TrimSpace(b.String())
}
