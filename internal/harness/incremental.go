package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"awam/internal/bench"
	"awam/internal/core"
	"awam/internal/inc"
	"awam/internal/wam"
)

// This file measures the incremental analysis engine: what a one-clause
// edit costs when per-component summaries are cached, versus
// re-analyzing from scratch. The workload is the wide scaling program —
// hundreds of independent predicate families — because that is the
// regime an analysis service lives in: a large program where any single
// edit touches a tiny cone.

// IncrementalEntry is the cold-versus-warm measurement for one
// workload, recorded in the JSON benchmark report.
type IncrementalEntry struct {
	// Name is the workload, e.g. "wide_512".
	Name string `json:"name"`
	// ColdNsPerOp is a from-scratch engine run (empty store);
	// WarmNsPerOp is a re-analysis after a one-clause edit against a
	// store primed with the unedited program. Both time the engine only
	// (parsing and compilation excluded, identically on both sides).
	ColdNsPerOp int64 `json:"cold_ns_per_op"`
	WarmNsPerOp int64 `json:"warm_ns_per_op"`
	// Speedup is ColdNsPerOp / WarmNsPerOp.
	Speedup float64 `json:"speedup"`
	// SCCs is the workload's component count; WarmSCCs of them were
	// served from the cache during the measured warm runs (per run).
	SCCs     int `json:"sccs"`
	WarmSCCs int `json:"warm_sccs"`
	// ColdIters and WarmIters are the run counts behind the averages.
	ColdIters int `json:"cold_iters"`
	WarmIters int `json:"warm_iters"`
}

// MeasureIncremental produces the cold-versus-warm entry for the
// wide program with the given family count. Warm runs are measured over
// distinct edits — run i appends one clause to family i's leaf — so
// every measured run pays the true incremental cost (probe every
// component, re-analyze one dirty cone, refresh its records); no run is
// measured against a store that has already seen its own edit.
func MeasureIncremental(families int, quick bool, progress io.Writer) (*IncrementalEntry, error) {
	base := bench.WideProgramSeeded(families, 0)
	e := &IncrementalEntry{Name: base.Name}
	say := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}
	cfg := core.DefaultConfig()
	ctx := context.Background()

	baseMod, err := compileBench(base)
	if err != nil {
		return nil, err
	}

	coldIters, warmIters := 3, 8
	if quick {
		coldIters, warmIters = 1, 2
	}
	if warmIters > families {
		warmIters = families
	}

	// Compile every module up front so both timed sections run against
	// the same live heap, and collect before each so neither section
	// pays for the other's (or an earlier benchmark's) garbage.
	editMods := make([]*wam.Module, warmIters)
	for i := 0; i < warmIters; i++ {
		edited := base
		edited.Source += fmt.Sprintf("\np%d_use(mutant_edit).\n", i)
		mod, err := compileBench(edited)
		if err != nil {
			return nil, err
		}
		editMods[i] = mod
	}

	// Cold: a fresh engine (empty store) per run.
	say("  %s/incremental: %d cold runs...\n", base.Name, coldIters)
	runtime.GC()
	start := time.Now()
	for i := 0; i < coldIters; i++ {
		if _, err := inc.NewEngine(nil).AnalyzeAll(ctx, baseMod, cfg); err != nil {
			return nil, err
		}
	}
	e.ColdNsPerOp = time.Since(start).Nanoseconds() / int64(coldIters)
	e.ColdIters = coldIters

	// Prime one engine with the unedited program, then measure edits.
	eng := inc.NewEngine(nil)
	if _, err := eng.AnalyzeAll(ctx, baseMod, cfg); err != nil {
		return nil, err
	}

	say("  %s/incremental: %d warm (one-edit) runs...\n", base.Name, warmIters)
	runtime.GC()
	start = time.Now()
	var last *inc.Result
	for i := 0; i < warmIters; i++ {
		res, err := eng.AnalyzeAll(ctx, editMods[i], cfg)
		if err != nil {
			return nil, err
		}
		last = res
	}
	e.WarmNsPerOp = time.Since(start).Nanoseconds() / int64(warmIters)
	e.WarmIters = warmIters
	e.SCCs = len(last.Plan.SCCs)
	e.WarmSCCs = last.WarmSCCs
	if e.WarmNsPerOp > 0 {
		e.Speedup = float64(e.ColdNsPerOp) / float64(e.WarmNsPerOp)
	}
	return e, nil
}
