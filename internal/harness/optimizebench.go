package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"awam/internal/bench"
	"awam/internal/core"
	"awam/internal/optimize"
)

// This file backs the benchtab `optimize` section: machine-runtime
// (not analysis-time) speedups from the gated optimizer pipeline, the
// paper's actual payoff. Each benchmark's main/0 is timed on the
// unoptimized and optimized machine; StepRatio is the deterministic
// abstract-machine step quotient (schedule-invariant, so reruns must
// reproduce it exactly), Speedup the fastest-of-N wall-clock quotient.

// OptimizeEntry is one benchmark's optimizer measurement.
type OptimizeEntry struct {
	// Name is the benchmark (Table 1 suite and extensions).
	Name string `json:"name"`
	// Rewrites is the pipeline's total rewrite count; Rejected counts
	// passes the differential gate refused (0 on the committed suite —
	// enforced by TestGateOnBenchSuite).
	Rewrites int `json:"rewrites"`
	Rejected int `json:"rejected,omitempty"`
	// CodeBefore/CodeAfter are module sizes in instructions (the
	// pipeline appends dispatch blocks, so CodeAfter >= CodeBefore).
	CodeBefore int `json:"code_before"`
	CodeAfter  int `json:"code_after"`
	// Runs is the measurement repeat count (fastest run kept).
	Runs int `json:"runs"`
	// BaselineNs/OptimizedNs are fastest-of-Runs wall times for main/0;
	// BaselineSteps/OptimizedSteps the machine steps of those runs.
	BaselineNs     int64 `json:"baseline_ns"`
	OptimizedNs    int64 `json:"optimized_ns"`
	BaselineSteps  int64 `json:"baseline_steps"`
	OptimizedSteps int64 `json:"optimized_steps"`
	// Speedup is BaselineNs/OptimizedNs; StepRatio the deterministic
	// BaselineSteps/OptimizedSteps.
	Speedup   float64 `json:"speedup"`
	StepRatio float64 `json:"step_ratio"`
}

// MeasureOptimizeJSON runs the gated default pipeline over the full
// benchmark suite and measures main/0 on both machines.
func MeasureOptimizeJSON(quick bool, progress io.Writer) ([]OptimizeEntry, error) {
	runs := 25
	if quick {
		runs = 3
	}
	var out []OptimizeEntry
	for _, p := range bench.AllPrograms() {
		if progress != nil {
			fmt.Fprintf(progress, "  optimize %s...\n", p.Name)
		}
		mod, err := compileBench(p)
		if err != nil {
			return nil, err
		}
		res, err := core.New(mod).AnalyzeAll()
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", p.Name, err)
		}
		pl := optimize.Pipeline{Gate: &optimize.Gate{Goals: []string{"main"}}}
		opt, outcomes, err := pl.Run(mod, res)
		if err != nil {
			return nil, fmt.Errorf("%s: optimize: %w", p.Name, err)
		}
		e := OptimizeEntry{
			Name:       p.Name,
			CodeBefore: mod.Size(),
			CodeAfter:  opt.Size(),
			Runs:       runs,
		}
		for _, oc := range outcomes {
			if oc.Rejected {
				e.Rejected++
				continue
			}
			e.Rewrites += oc.Stats.Total
		}
		baseNs, baseSteps, err := optimize.Measure(mod, "main", runs)
		if err != nil {
			return nil, fmt.Errorf("%s: measure baseline: %w", p.Name, err)
		}
		optNs, optSteps, err := optimize.Measure(opt, "main", runs)
		if err != nil {
			return nil, fmt.Errorf("%s: measure optimized: %w", p.Name, err)
		}
		e.BaselineNs = baseNs.Nanoseconds()
		e.OptimizedNs = optNs.Nanoseconds()
		e.BaselineSteps = baseSteps
		e.OptimizedSteps = optSteps
		if e.OptimizedNs > 0 {
			e.Speedup = float64(e.BaselineNs) / float64(e.OptimizedNs)
		}
		if e.OptimizedSteps > 0 {
			e.StepRatio = float64(e.BaselineSteps) / float64(e.OptimizedSteps)
		}
		out = append(out, e)
	}
	return out, nil
}

// WriteOptimizeTable renders the optimizer measurements as a text table
// (benchtab -table optimize).
func WriteOptimizeTable(w io.Writer, entries []OptimizeEntry) {
	fmt.Fprintln(w, "Optimizer: machine-runtime speedup of main/0 (gated pipeline)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\trewrites\tsteps before\tsteps after\tstep ratio\tns before\tns after\tspeedup")
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%d\t%d\t%.2f\n",
			e.Name, e.Rewrites, e.BaselineSteps, e.OptimizedSteps, e.StepRatio,
			e.BaselineNs, e.OptimizedNs, e.Speedup)
	}
	tw.Flush()
}
