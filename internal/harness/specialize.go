package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"awam/internal/bench"
	"awam/internal/core"
	"awam/internal/inc"
	"awam/internal/specialize"
	"awam/internal/term"
	"awam/internal/wam"
)

// This file backs `benchtab -table specialize` and the Specialize
// section of the JSON report: the ablation of the per-SCC specialized
// transfer streams (internal/specialize) isolating what each layer
// buys. The legs are cumulative by construction:
//
//	off      — the generic switch engine (core.Config.Spec == nil)
//	flatten  — contiguous per-component streams, generic interning
//	fuse     — flatten + profile-guided superinstruction fusion
//	full     — fuse + pre-interning (static call sites, materialize
//	           plans, dense tables and worklist bookkeeping)
//
// Every leg is byte-identical to "off" (enforced per cell and by the
// differential suite); only the wall time moves.

// SpecProfile converts a measured Metrics into the specializer's fusion
// profile — the "profile-guided" input of Build. The opcode histogram
// picks which instruction pairs are worth fusing; the per-predicate
// step weights decide which components are hot enough to specialize.
func SpecProfile(m *core.Metrics) *specialize.Profile {
	if m == nil {
		return nil
	}
	p := &specialize.Profile{PredSteps: make(map[term.Functor]int64, len(m.PredSteps))}
	p.Opcodes = m.Opcodes
	for fn, n := range m.PredSteps {
		p.PredSteps[fn] = n
	}
	return p
}

// buildSpecProgram assembles the specialized program for mod the way
// the facade does, but from a measured profile when one is available.
func buildSpecProgram(mod *wam.Module, prof *specialize.Profile, opts specialize.Options) *specialize.Program {
	plan := inc.Condense(mod, core.Config{})
	comps := make([][]term.Functor, len(plan.SCCs))
	for i, scc := range plan.SCCs {
		comps[i] = scc.Members
	}
	if prof == nil {
		prof = specialize.StaticProfile(mod)
	}
	return specialize.Build(mod, comps, prof, opts)
}

// SpecializeEntry is one measured cell of the specialization ablation.
type SpecializeEntry struct {
	// Name is the workload, Config the engine ("worklist"/"parallel-4"),
	// Leg the specializer configuration ("off", "flatten", "fuse",
	// "full").
	Name        string `json:"name"`
	Config      string `json:"config"`
	Leg         string `json:"leg"`
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// Steps is the abstract instruction count — identical across legs by
	// the byte-identity contract.
	Steps int64 `json:"steps"`
	// FusedOps is the number of fused superinstructions executed in one
	// run (zero for off/flatten).
	FusedOps int64 `json:"fused_ops"`
	// SpeedupVsOff is off-ns / this-leg-ns for the same (Name, Config).
	SpeedupVsOff float64 `json:"speedup_vs_off"`
	// Identical records the per-cell byte-identity check against the
	// off leg's Marshal output.
	Identical bool `json:"identical"`
}

// specLegs are the ablation legs; nil opts means "off".
var specLegs = []struct {
	name string
	opts *specialize.Options
}{
	{"off", nil},
	{"flatten", &specialize.Options{}},
	{"fuse", &specialize.Options{Fuse: true}},
	{"full", &specialize.Options{Fuse: true, PreIntern: true}},
}

// measureSpecCell measures one (workload, config, leg) cell: an untimed
// verification run for Marshal identity, Steps and fused-op counts,
// then the shared timing loop.
func measureSpecCell(name, config, leg string, mod *wam.Module, cfg core.Config, wantMarshal string, quick bool) (SpecializeEntry, error) {
	e := SpecializeEntry{Name: name, Config: config, Leg: leg}
	res, err := core.NewWith(mod, cfg).AnalyzeMain()
	if err != nil {
		return e, fmt.Errorf("%s/%s/%s: %w", name, config, leg, err)
	}
	e.Steps = res.Steps
	e.Identical = res.Marshal() == wantMarshal
	if res.Metrics != nil {
		for _, n := range res.Metrics.FusedOps {
			e.FusedOps += n
		}
	}
	be, err := measureJSON(name, config, mod, cfg, quick)
	if err != nil {
		return e, err
	}
	e.Iters = be.Iters
	e.NsPerOp = be.NsPerOp
	e.BytesPerOp = be.BytesPerOp
	e.AllocsPerOp = be.AllocsPerOp
	return e, nil
}

// MeasureSpecialize produces the specialization ablation: the wide
// scaling workloads under worklist and parallel-4 across all four legs,
// plus the Table 1 suite under the worklist at off/full. Fusion is
// guided by a measured profile of one generic worklist run per
// workload. progress, when non-nil, receives one line per cell.
func MeasureSpecialize(quick bool, progress io.Writer) ([]SpecializeEntry, error) {
	say := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}
	var out []SpecializeEntry

	measure := func(p bench.Program, configs []struct {
		label string
		cfg   core.Config
	}, legs []struct {
		name string
		opts *specialize.Options
	}) error {
		mod, err := compileBench(p)
		if err != nil {
			return err
		}
		// Profiling run: generic worklist, also the identity reference.
		wlCfg := core.DefaultConfig()
		wlCfg.Strategy = core.StrategyWorklist
		ref, err := core.NewWith(mod, wlCfg).AnalyzeMain()
		if err != nil {
			return fmt.Errorf("%s: profile run: %w", p.Name, err)
		}
		prof := SpecProfile(ref.Metrics)
		want := ref.Marshal()
		for _, c := range configs {
			var off int64
			for _, leg := range legs {
				cfg := c.cfg
				if leg.opts != nil {
					cfg.Spec = buildSpecProgram(mod, prof, *leg.opts)
				}
				say("  specialize %s/%s/%s...\n", p.Name, c.label, leg.name)
				e, err := measureSpecCell(p.Name, c.label, leg.name, mod, cfg, want, quick)
				if err != nil {
					return err
				}
				if leg.name == "off" {
					off = e.NsPerOp
				}
				if off > 0 && e.NsPerOp > 0 {
					e.SpeedupVsOff = float64(off) / float64(e.NsPerOp)
				}
				out = append(out, e)
			}
		}
		return nil
	}

	for _, fam := range []int{256, 512} {
		if err := measure(bench.WideProgram(fam), benchConfigs(), specLegs); err != nil {
			return nil, err
		}
	}
	wl := benchConfigs()[:1] // worklist only for the small programs
	offFull := []struct {
		name string
		opts *specialize.Options
	}{specLegs[0], specLegs[3]}
	for _, p := range bench.Programs {
		if err := measure(p, wl, offFull); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteSpecializeTable renders the ablation as text.
func WriteSpecializeTable(w io.Writer, entries []SpecializeEntry) {
	fmt.Fprintln(w, "Specialized transfer streams: ablation (speedup vs generic engine)")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tconfig\tleg\tns/op\tspeedup\tfused/run\tidentical")
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.2fx\t%d\t%v\n",
			e.Name, e.Config, e.Leg, e.NsPerOp, e.SpeedupVsOff, e.FusedOps, e.Identical)
	}
	tw.Flush()
}
