package harness

import (
	"strings"
	"testing"
	"time"

	"awam/internal/bench"
)

// quickOpts keeps harness tests fast: single-run samples.
func quickOpts() MeasureOptions {
	opts := DefaultMeasureOptions()
	opts.MinSampleTime = time.Microsecond
	return opts
}

func TestMeasureOneBenchmark(t *testing.T) {
	p, _ := bench.ByName("tak")
	m, err := Measure(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if m.Args != 4 || m.Preds != 2 {
		t.Fatalf("profile = Args %d Preds %d", m.Args, m.Preds)
	}
	if m.Size == 0 || m.Exec == 0 || m.OursMS <= 0 || m.HostedMS <= 0 {
		t.Fatalf("metrics incomplete: %+v", m)
	}
	if m.SpeedupHosted() <= 1 {
		t.Fatalf("compiled analysis should beat the hosted analyzer on tak, got %.2fx", m.SpeedupHosted())
	}
}

func TestMeasureSkipsBaselines(t *testing.T) {
	p, _ := bench.ByName("nreverse")
	opts := quickOpts()
	opts.SkipHosted = true
	opts.SkipMetaGo = true
	m, err := Measure(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.HostedMS != 0 || m.MetaGoMS != 0 {
		t.Fatalf("skipped baselines should be zero: %+v", m)
	}
}

func TestTable1Renders(t *testing.T) {
	p, _ := bench.ByName("qsort")
	m, err := Measure(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteTable1(&b, []*Metrics{m})
	out := b.String()
	if !strings.Contains(out, "qsort") || !strings.Contains(out, "Speed-Up") ||
		!strings.Contains(out, "average") {
		t.Fatalf("table 1 incomplete:\n%s", out)
	}
}

func TestTable2Renders(t *testing.T) {
	p, _ := bench.ByName("tak")
	m, err := Measure(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := []*Metrics{m}
	configs, err := MeasureConfigs(quickOpts(), rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) < 5 {
		t.Fatalf("expected the full configuration sweep, got %d columns", len(configs))
	}
	var b strings.Builder
	WriteTable2(&b, rows, configs)
	out := b.String()
	for _, want := range []string{"k=4", "k=2", "k=8", "hash-ET", "no-index", "meta-Go", "average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestAblationRenders(t *testing.T) {
	rows, err := MeasureAblation(quickOpts(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(bench.Programs) {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	var b strings.Builder
	WriteAblation(&b, rows)
	if !strings.Contains(b.String(), "ground%") {
		t.Fatal("ablation header missing")
	}
	// Precision must not decrease with deeper k on any benchmark.
	byName := make(map[string]map[int]AblationRow)
	for _, r := range rows {
		if byName[r.Name] == nil {
			byName[r.Name] = make(map[int]AblationRow)
		}
		byName[r.Name][r.Depth] = r
	}
	for name, m := range byName {
		if m[4].GroundPct+1e-9 < m[2].GroundPct {
			t.Errorf("%s: ground%% fell from k=2 (%.2f) to k=4 (%.2f)",
				name, m[2].GroundPct, m[4].GroundPct)
		}
	}
}

func TestSummaryLine(t *testing.T) {
	p, _ := bench.ByName("tak")
	m, err := Measure(p, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(SummaryLine([]*Metrics{m}), "tak=") {
		t.Fatal("summary line malformed")
	}
}

// TestSeededWideProgramAnalyzes checks that a randomized wide workload
// (benchtab -seed) still compiles and reaches a fixpoint, and that the
// measurement cell carries the schedule-invariant counters the JSON
// report records.
func TestSeededWideProgramAnalyzes(t *testing.T) {
	p := bench.WideProgramSeeded(8, 42)
	mod, err := compileBench(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := benchConfigs()[0] // worklist
	e, err := measureJSON(p.Name, cfg.label, mod, cfg.cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if e.TableSize == 0 || e.Steps == 0 {
		t.Fatalf("seeded wide program produced empty counters: %+v", e)
	}
}
