package harness

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"time"

	"awam"
	"awam/internal/bench"
	"awam/internal/cache"
	"awam/internal/core"
	"awam/internal/inc"
	"awam/internal/serve"
	"awam/internal/wam"
)

// This file measures the summary fabric: what a one-edit re-analysis
// costs when the warm records live on another daemon, reached over the
// batched /v1/store protocol, versus computing from scratch. The
// topology is the minimal fleet — daemon A holds the records (primed by
// pushing a cold run's flush through the real put handlers), daemon B
// starts with cold local tiers and only the fabric between it and a
// scratch run. A forced mid-run outage is measured alongside: it must
// finish byte-identical with no surfaced error.

// FabricEntry is the fabric measurement for one workload, recorded in
// the JSON benchmark report.
type FabricEntry struct {
	// Name is the workload, e.g. "wide_512".
	Name string `json:"name"`
	// ColdNsPerOp is daemon B's from-scratch run (no store at all);
	// FabricNsPerOp is its one-edit re-analysis with cold memory and
	// disk, warm only through the remote tier. Both time the engine
	// only.
	ColdNsPerOp   int64 `json:"cold_ns_per_op"`
	FabricNsPerOp int64 `json:"fabric_ns_per_op"`
	// Speedup is ColdNsPerOp / FabricNsPerOp.
	Speedup float64 `json:"speedup"`
	// SCCs is the workload's component count; WarmSCCs of them were
	// served over the fabric in each measured run.
	SCCs     int `json:"sccs"`
	WarmSCCs int `json:"warm_sccs"`
	// RemoteLoads and RemoteRoundTrips are per measured fabric run:
	// records faulted from daemon A and HTTP exchanges needed to do it.
	RemoteLoads      int64 `json:"remote_loads"`
	RemoteRoundTrips int64 `json:"remote_round_trips"`
	// ColdIters and FabricIters are the run counts behind the averages.
	ColdIters   int `json:"cold_iters"`
	FabricIters int `json:"fabric_iters"`
	// OutageIdentical records the forced mid-run outage check: the peer
	// starts 503ing partway through the prefetch, and the analysis must
	// still return no error and a byte-identical result. OutageErrors
	// is the store's count of failed round trips during that run
	// (nonzero proves the outage actually hit the fabric path).
	OutageIdentical bool  `json:"outage_identical"`
	OutageErrors    int64 `json:"outage_errors"`
}

// MeasureFabric produces the fabric entry for the wide program with the
// given family count.
func MeasureFabric(families int, quick bool, progress io.Writer) (*FabricEntry, error) {
	base := bench.WideProgramSeeded(families, 0)
	e := &FabricEntry{Name: base.Name}
	say := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}
	cfg := core.DefaultConfig()
	ctx := context.Background()

	baseMod, err := compileBench(base)
	if err != nil {
		return nil, err
	}

	// Daemon A: an empty store behind the real HTTP handlers.
	storeA, err := awam.NewStore()
	if err != nil {
		return nil, err
	}
	srvA, err := serve.New(serve.Config{Cache: storeA})
	if err != nil {
		return nil, err
	}
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	// Prime A through the fabric itself: a cold fabric-attached run of
	// the base program computes everything and flushes the records to A
	// through the put handlers — exactly how a fleet member would seed
	// its peers.
	say("  %s/fabric: priming daemon A over the wire...\n", base.Name)
	primer, err := cache.New(cache.WithRemoteURL(tsA.URL))
	if err != nil {
		return nil, err
	}
	if _, err := inc.NewEngine(primer).AnalyzeAll(ctx, baseMod, cfg); err != nil {
		return nil, err
	}
	if st := primer.Stats(); st.RemotePuts == 0 || st.RemoteErrors != 0 {
		return nil, fmt.Errorf("fabric: priming flush pushed %d records, %d errors",
			st.RemotePuts, st.RemoteErrors)
	}

	coldIters, fabricIters := 3, 8
	if quick {
		coldIters, fabricIters = 1, 2
	}
	if fabricIters > families {
		fabricIters = families
	}

	editMods := make([]*editCase, fabricIters)
	for i := 0; i < fabricIters; i++ {
		edited := base
		edited.Source += fmt.Sprintf("\np%d_use(mutant_edit).\n", i)
		mod, err := compileBench(edited)
		if err != nil {
			return nil, err
		}
		ref, err := inc.NewEngine(nil).AnalyzeAll(ctx, mod, cfg)
		if err != nil {
			return nil, err
		}
		editMods[i] = &editCase{mod: mod, ref: ref.Result.Marshal()}
	}

	// Cold: daemon B from scratch, no store.
	say("  %s/fabric: %d cold scratch runs...\n", base.Name, coldIters)
	runtime.GC()
	start := time.Now()
	for i := 0; i < coldIters; i++ {
		if _, err := inc.NewEngine(nil).AnalyzeAll(ctx, editMods[i%fabricIters].mod, cfg); err != nil {
			return nil, err
		}
	}
	e.ColdNsPerOp = time.Since(start).Nanoseconds() / int64(coldIters)
	e.ColdIters = coldIters

	// Fabric: every run is a fresh store — cold memory, no disk — so
	// each one pays the full fetch-over-HTTP cost, plus one dirty cone.
	say("  %s/fabric: %d one-edit runs through daemon A...\n", base.Name, fabricIters)
	runtime.GC()
	start = time.Now()
	var lastRes *inc.Result
	var lastStats cache.Stats
	for i := 0; i < fabricIters; i++ {
		storeB, err := cache.New(cache.WithRemoteURL(tsA.URL))
		if err != nil {
			return nil, err
		}
		res, err := inc.NewEngine(storeB).AnalyzeAll(ctx, editMods[i].mod, cfg)
		if err != nil {
			return nil, err
		}
		if res.Result.Marshal() != editMods[i].ref {
			return nil, fmt.Errorf("fabric: run %d differs from scratch", i)
		}
		lastRes, lastStats = res, storeB.Stats()
	}
	e.FabricNsPerOp = time.Since(start).Nanoseconds() / int64(fabricIters)
	e.FabricIters = fabricIters
	e.SCCs = len(lastRes.Plan.SCCs)
	e.WarmSCCs = lastRes.WarmSCCs
	e.RemoteLoads = lastStats.RemoteLoads
	e.RemoteRoundTrips = lastStats.RemoteRoundTrips
	if lastStats.RemoteErrors != 0 {
		return nil, fmt.Errorf("fabric: healthy runs surfaced %d remote errors", lastStats.RemoteErrors)
	}
	if e.FabricNsPerOp > 0 {
		e.Speedup = float64(e.ColdNsPerOp) / float64(e.FabricNsPerOp)
	}

	// Forced outage mid-run: a proxy in front of A serves exactly one
	// round trip, then 503s — the peer dies partway through the
	// prefetch (large programs) or before the flush (small ones). The
	// edit is one daemon A has never seen, so the run cannot be served
	// entirely by that first round trip. The analysis must complete
	// with no error and a byte-identical result.
	say("  %s/fabric: forced mid-run outage...\n", base.Name)
	outage := base
	outage.Source += "\np0_use(outage_edit).\n"
	outMod, err := compileBench(outage)
	if err != nil {
		return nil, err
	}
	outRef, err := inc.NewEngine(nil).AnalyzeAll(ctx, outMod, cfg)
	if err != nil {
		return nil, err
	}
	var served atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 1 {
			http.Error(w, "upstream gone", http.StatusServiceUnavailable)
			return
		}
		srvA.Handler().ServeHTTP(w, r)
	}))
	defer proxy.Close()
	storeOut, err := cache.New(cache.WithRemoteURL(proxy.URL,
		cache.WithRemoteRetries(0),
		cache.WithRemoteBackoff(time.Millisecond),
		cache.WithRemoteBreaker(2, time.Minute),
	))
	if err != nil {
		return nil, err
	}
	res, err := inc.NewEngine(storeOut).AnalyzeAll(ctx, outMod, cfg)
	if err != nil {
		return nil, fmt.Errorf("fabric: outage run surfaced an error: %w", err)
	}
	e.OutageIdentical = res.Result.Marshal() == outRef.Result.Marshal()
	e.OutageErrors = storeOut.Stats().RemoteErrors
	if !e.OutageIdentical {
		return nil, fmt.Errorf("fabric: outage run differs from scratch")
	}
	if e.OutageErrors == 0 {
		return nil, fmt.Errorf("fabric: outage did not reach the fabric path")
	}
	return e, nil
}

// editCase pairs a compiled edit with its scratch-analysis reference
// output.
type editCase struct {
	mod *wam.Module
	ref string
}
