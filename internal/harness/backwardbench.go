package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"awam/internal/backward"
	"awam/internal/bench"
	"awam/internal/compiler"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/wam"
)

// This file measures the demand-driven backward engine on the wide
// scaling workload: a single-family demand query against a program of
// hundreds of independent families. Three regimes matter — a cold query
// (empty store) pays for exactly the demanded cone, a repeat query
// against a primed store re-executes nothing, and a one-edit re-query
// pays only for the edited family's dirty records.

// BackwardEntry is the backward-engine measurement for one workload,
// recorded in the JSON benchmark report.
type BackwardEntry struct {
	// Name is the workload, e.g. "wide_512"; Goal the demand entry.
	Name string `json:"name"`
	Goal string `json:"goal"`
	// VisitedSCCs/TotalSCCs is the demanded-cone criterion: a
	// single-family query must visit a tiny fraction of the program.
	VisitedSCCs int `json:"visited_sccs"`
	TotalSCCs   int `json:"total_sccs"`
	// ColdNsPerOp times a query against an empty store (ColdExecuted
	// components ran the gfp); WarmNsPerOp a repeat against the primed
	// store (WarmExecuted must be zero, WarmReused = ColdExecuted).
	ColdNsPerOp  int64 `json:"cold_ns_per_op"`
	WarmNsPerOp  int64 `json:"warm_ns_per_op"`
	ColdExecuted int   `json:"cold_executed"`
	WarmExecuted int   `json:"warm_executed"`
	WarmReused   int   `json:"warm_reused"`
	// Speedup is ColdNsPerOp / WarmNsPerOp.
	Speedup float64 `json:"speedup"`
	// Identical is the byte-level acceptance check: the cold and warm
	// results Marshal identically.
	Identical bool `json:"identical"`
	// EditNsPerOp re-queries after a one-clause edit to the demanded
	// family; EditExecuted components (the dirty cone) re-ran.
	EditNsPerOp  int64 `json:"edit_ns_per_op"`
	EditExecuted int   `json:"edit_executed"`
	// ColdIters and WarmIters are the run counts behind the averages.
	ColdIters int `json:"cold_iters"`
	WarmIters int `json:"warm_iters"`
}

// compileBackward parses and compiles p, keeping the source program —
// the backward engine computes demands over the expanded clauses.
func compileBackward(p bench.Program) (*term.Tab, *term.Program, *wam.Module, error) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, p.Source)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: parse: %w", p.Name, err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: compile: %w", p.Name, err)
	}
	return tab, prog, mod, nil
}

// MeasureBackward produces the backward-engine entry for the wide
// program with the given family count, demanding one family's reverse
// predicate (p0_rev/2).
func MeasureBackward(families int, quick bool, progress io.Writer) (*BackwardEntry, error) {
	base := bench.WideProgramSeeded(families, 0)
	say := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}
	ctx := context.Background()

	tab, prog, mod, err := compileBackward(base)
	if err != nil {
		return nil, err
	}
	goal := tab.Func("p0_rev", 2)
	cfg := backward.Config{Goals: []term.Functor{goal}}
	e := &BackwardEntry{Name: base.Name, Goal: tab.FuncString(goal)}

	coldIters, warmIters := 5, 20
	if quick {
		coldIters, warmIters = 1, 2
	}
	e.ColdIters, e.WarmIters = coldIters, warmIters

	// Cold: a fresh engine (empty private store) per run.
	say("  %s/backward: %d cold runs...\n", base.Name, coldIters)
	runtime.GC()
	var cold *backward.Result
	start := time.Now()
	for i := 0; i < coldIters; i++ {
		cold, err = backward.NewEngine(nil).Analyze(ctx, mod, prog, cfg)
		if err != nil {
			return nil, err
		}
	}
	e.ColdNsPerOp = time.Since(start).Nanoseconds() / int64(coldIters)
	e.VisitedSCCs = cold.VisitedSCCs
	e.TotalSCCs = cold.TotalSCCs
	e.ColdExecuted = cold.ExecutedSCCs

	// Warm: one engine primed by its first query, then repeat queries.
	eng := backward.NewEngine(nil)
	if _, err := eng.Analyze(ctx, mod, prog, cfg); err != nil {
		return nil, err
	}
	say("  %s/backward: %d warm runs...\n", base.Name, warmIters)
	runtime.GC()
	var warm *backward.Result
	start = time.Now()
	for i := 0; i < warmIters; i++ {
		warm, err = eng.Analyze(ctx, mod, prog, cfg)
		if err != nil {
			return nil, err
		}
	}
	e.WarmNsPerOp = time.Since(start).Nanoseconds() / int64(warmIters)
	e.WarmExecuted = warm.ExecutedSCCs
	e.WarmReused = warm.ReusedSCCs
	e.Identical = cold.Marshal() == warm.Marshal()
	if e.WarmNsPerOp > 0 {
		e.Speedup = float64(e.ColdNsPerOp) / float64(e.WarmNsPerOp)
	}

	// One-edit re-query: append a clause to the demanded family's leaf
	// and ask again — only the dirty cone may re-execute.
	edited := base
	edited.Source += "\np0_rev(mutant_edit, mutant_edit).\n"
	_, eprog, emod, err := compileBackward(edited)
	if err != nil {
		return nil, err
	}
	egoal := emod.Tab.Func("p0_rev", 2)
	say("  %s/backward: one-edit re-query...\n", base.Name)
	start = time.Now()
	eres, err := eng.Analyze(ctx, emod, eprog, backward.Config{Goals: []term.Functor{egoal}})
	if err != nil {
		return nil, err
	}
	e.EditNsPerOp = time.Since(start).Nanoseconds()
	e.EditExecuted = eres.ExecutedSCCs
	return e, nil
}

// WriteBackwardTable renders the backward measurements as text.
func WriteBackwardTable(w io.Writer, entries []BackwardEntry) {
	fmt.Fprintln(w, "Backward demand queries (cold store vs primed store vs one-edit re-query)")
	fmt.Fprintf(w, "%-10s %-10s %10s %12s %12s %8s %12s %10s %s\n",
		"program", "goal", "cone", "cold ns/op", "warm ns/op", "speedup", "edit ns/op", "re-exec", "identical")
	for _, e := range entries {
		fmt.Fprintf(w, "%-10s %-10s %6d/%-5d %12d %12d %7.1fx %12d %10d %t\n",
			e.Name, e.Goal, e.VisitedSCCs, e.TotalSCCs,
			e.ColdNsPerOp, e.WarmNsPerOp, e.Speedup,
			e.EditNsPerOp, e.EditExecuted, e.Identical)
	}
}
