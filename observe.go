package awam

import (
	"sort"
	"time"

	"awam/internal/core"
	"awam/internal/term"
	"awam/internal/wam"
)

// TableEvent classifies the extension-table operations a Tracer sees.
type TableEvent int

const (
	// TableHit is a lookup that found an existing entry.
	TableHit TableEvent = iota
	// TableMiss is a lookup that found nothing.
	TableMiss
	// TableInsert is a fresh entry insertion (always follows a miss).
	TableInsert
	// TableUpdate is a success-pattern growth.
	TableUpdate
)

// String names the event for trace output.
func (ev TableEvent) String() string { return core.TableEvent(ev).String() }

// Tracer receives analysis events, installed with WithTracer. Tracing is
// for understanding a run, not for production metrics — every abstract
// instruction calls Instr, so expect an order-of-magnitude slowdown;
// with no tracer installed the instrumentation costs one pointer test
// per instruction. Under WithParallelism callbacks arrive concurrently
// from every worker goroutine; implementations must be safe for
// concurrent use.
type Tracer interface {
	// Instr fires before each abstract instruction with the predicate
	// ("name/arity") whose clause is executing and the opcode name.
	Instr(pred, opcode string)
	// Table fires on extension-table operations for the consulted
	// predicate.
	Table(pred string, ev TableEvent)
	// Enqueue fires when a calling pattern is re-enqueued because a
	// summary it depends on grew (Worklist and Parallel strategies).
	Enqueue(pred string)
	// Iteration fires at the start of each Naive fixpoint pass.
	Iteration(n int)
	// Worker fires at Parallel worker start (start=true) and exit.
	Worker(id int, start bool)
}

// WithTracer installs a Tracer for the analysis. A nil t is a no-op.
func WithTracer(t Tracer) AnalyzeOption {
	return func(c *analyzeCfg) { c.tracer = t }
}

// coreTracer adapts the public string-oriented Tracer onto the internal
// functor/opcode interface. The symbol table is only read (names are
// interned at load time), so translation is safe from worker goroutines.
type coreTracer struct {
	tab *term.Tab
	t   Tracer
}

func (ct coreTracer) Instr(fn term.Functor, op wam.Op) {
	ct.t.Instr(ct.tab.FuncString(fn), op.String())
}
func (ct coreTracer) Table(fn term.Functor, ev core.TableEvent) {
	ct.t.Table(ct.tab.FuncString(fn), TableEvent(ev))
}
func (ct coreTracer) Enqueue(fn term.Functor)   { ct.t.Enqueue(ct.tab.FuncString(fn)) }
func (ct coreTracer) Iteration(n int)           { ct.t.Iteration(n) }
func (ct coreTracer) Worker(id int, start bool) { ct.t.Worker(id, start) }

// PredMetrics is the per-predicate share of an analysis run.
type PredMetrics struct {
	// Pred is the predicate as "name/arity".
	Pred string
	// Steps is the number of abstract instructions executed inside the
	// predicate's clauses (exclusive: callee instructions are charged to
	// the callee).
	Steps int64
	// Runs is the number of times the predicate's calling patterns were
	// (re-)explored — its re-analysis count.
	Runs int64
}

// OpMetrics is one row of the per-opcode execution histogram.
type OpMetrics struct {
	// Opcode is the abstract WAM instruction name.
	Opcode string
	// Count is the number of executions.
	Count int64
}

// WorkerMetrics is one Parallel worker's share of the run.
type WorkerMetrics struct {
	ID int
	// Steps is the number of abstract instructions the worker executed.
	Steps int64
	// Explorations is the number of table entries the worker explored.
	Explorations int64
	// QueueWait is the total time the worker spent waiting on the shared
	// work queue.
	QueueWait time.Duration
}

// Metrics is the merged instrumentation of one analysis run. It is
// always collected — the counters are per-worker plain increments merged
// after the fixpoint — and covers the fixpoint phase only (the
// deterministic finalize replay is excluded), so the step totals equal
// Stats().Exec under every strategy.
type Metrics struct {
	// Predicates holds per-predicate steps and re-analysis counts,
	// sorted by Steps descending (ties by name).
	Predicates []PredMetrics
	// Opcodes is the execution histogram, sorted by Count descending;
	// the counts sum to Stats().Exec.
	Opcodes []OpMetrics
	// Extension-table operation counts. A lookup that finds an entry is
	// a hit; a miss is immediately followed by an insert; an update is a
	// success-pattern growth.
	TableHits, TableMisses, TableInserts, TableUpdates int64
	// Enqueues counts dependency-driven re-enqueues (Worklist/Parallel).
	Enqueues int64
	// Hash-consing traffic: InternHits counts pattern interns resolved
	// by the interner's read path, InternMisses first-sight insertions.
	// InternedPatterns and InternedTerms are the interner's end-of-run
	// sizes — the distinct canonical patterns and abstract term nodes
	// the analysis touched.
	InternHits, InternMisses        int64
	InternedPatterns, InternedTerms int
	// Lub-cache traffic: summary merges answered from the ID-keyed memo
	// cache versus computed by a full graph lub and widen. The hit rate
	// LubCacheHits/(LubCacheHits+LubCacheMisses) is the share of merges
	// that cost a map probe instead of a tree walk.
	LubCacheHits, LubCacheMisses int64
	// HeapHighWater is the largest abstract heap (in cells) the analysis
	// ever held.
	HeapHighWater int
	// Warm-start traffic (WithSummaryCache runs; zero otherwise):
	// WarmHits counts calling patterns seeded from cached summaries
	// instead of being explored, WarmMisses probes that found no seed.
	WarmHits, WarmMisses int64
	// Summary-store traffic of this run: record probes that hit and
	// missed (one probe per program component), records evicted by the
	// memory budget, and the store's in-memory footprint afterwards.
	CacheHits, CacheMisses, CacheEvictions, CacheBytes int64
	// Remote-tier (summary fabric) traffic of this run: records faulted
	// in from the fabric peer, records the peer did not hold, records
	// pushed upstream, HTTP round trips, and failed exchanges (all
	// degraded to local misses). Zero without a remote tier.
	RemoteLoads, RemoteMisses, RemotePuts int64
	RemoteRoundTrips, RemoteErrors        int64
	// ExecuteTime is the fixpoint-phase wall time; FinalizeTime the
	// deterministic presentation pass's. TableTime estimates the share
	// of ExecuteTime spent in extension-table operations (sampled).
	ExecuteTime, TableTime, FinalizeTime time.Duration
	// Workers holds per-worker breakdowns (Parallel strategy only).
	Workers []WorkerMetrics
}

// Metrics returns the run's instrumentation. The zero Metrics is
// returned for analyses loaded with LoadAnalysis (no run happened).
func (a *Analysis) Metrics() Metrics {
	cm := a.res.Metrics
	if cm == nil {
		return Metrics{}
	}
	m := Metrics{
		TableHits:        cm.TableHits,
		TableMisses:      cm.TableMisses,
		TableInserts:     cm.TableInserts,
		TableUpdates:     cm.TableUpdates,
		Enqueues:         cm.Enqueues,
		InternHits:       cm.InternHits,
		InternMisses:     cm.InternMisses,
		InternedPatterns: cm.InternedPatterns,
		InternedTerms:    cm.InternedTerms,
		LubCacheHits:     cm.LubCacheHits,
		LubCacheMisses:   cm.LubCacheMisses,
		HeapHighWater:    cm.HeapHighWater,
		WarmHits:         cm.WarmHits,
		WarmMisses:       cm.WarmMisses,
		CacheHits:        cm.CacheHits,
		CacheMisses:      cm.CacheMisses,
		CacheEvictions:   cm.CacheEvictions,
		CacheBytes:       cm.CacheBytes,
		RemoteLoads:      cm.RemoteLoads,
		RemoteMisses:     cm.RemoteMisses,
		RemotePuts:       cm.RemotePuts,
		RemoteRoundTrips: cm.RemoteRoundTrips,
		RemoteErrors:     cm.RemoteErrors,
		ExecuteTime:      cm.ExecuteTime,
		TableTime:        cm.TableTime,
		FinalizeTime:     cm.FinalizeTime,
	}
	for fn, steps := range cm.PredSteps {
		m.Predicates = append(m.Predicates, PredMetrics{
			Pred:  a.sys.tab.FuncString(fn),
			Steps: steps,
			Runs:  cm.PredRuns[fn],
		})
	}
	for fn, runs := range cm.PredRuns {
		if _, seen := cm.PredSteps[fn]; !seen {
			m.Predicates = append(m.Predicates, PredMetrics{
				Pred: a.sys.tab.FuncString(fn), Runs: runs,
			})
		}
	}
	sort.Slice(m.Predicates, func(i, j int) bool {
		if m.Predicates[i].Steps != m.Predicates[j].Steps {
			return m.Predicates[i].Steps > m.Predicates[j].Steps
		}
		return m.Predicates[i].Pred < m.Predicates[j].Pred
	})
	for op, n := range cm.Opcodes {
		if n > 0 {
			m.Opcodes = append(m.Opcodes, OpMetrics{Opcode: wam.Op(op).String(), Count: n})
		}
	}
	sort.Slice(m.Opcodes, func(i, j int) bool {
		if m.Opcodes[i].Count != m.Opcodes[j].Count {
			return m.Opcodes[i].Count > m.Opcodes[j].Count
		}
		return m.Opcodes[i].Opcode < m.Opcodes[j].Opcode
	})
	for _, w := range cm.Workers {
		m.Workers = append(m.Workers, WorkerMetrics{
			ID: w.ID, Steps: w.Steps, Explorations: w.Explorations, QueueWait: w.QueueWait,
		})
	}
	return m
}
