// Package awam is an abstract WAM: a compiled dataflow analyzer for
// logic programs, reproducing "Compiling Dataflow Analysis of Logic
// Programs" (Tan & Lin, PLDI 1992).
//
// The package bundles a complete pipeline behind a small, string-oriented
// API:
//
//   - a Prolog reader and a clause compiler producing standard WAM code,
//   - a concrete WAM that executes that code (Run, RunMain),
//   - the abstract WAM that reinterprets the same code over a mode/type/
//     aliasing domain with an extension-table fixpoint (Analyze),
//   - an analysis-driven code specializer (Optimize),
//   - the Section 5 source transformation printer (Transform), and
//   - a Prolog-hosted analyzer running on the concrete WAM (the paper's
//     comparison baseline, HostedAnalyze).
//
// Quick start:
//
//	sys, _ := awam.Load("main :- append([1,2],[3],X), use(X). ...")
//	analysis, _ := sys.Analyze()
//	fmt.Print(analysis.Report())
package awam

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"awam/internal/backward"
	"awam/internal/compiler"
	"awam/internal/core"
	"awam/internal/domain"
	"awam/internal/inc"
	"awam/internal/machine"
	"awam/internal/optimize"
	"awam/internal/parser"
	"awam/internal/plmeta"
	"awam/internal/specialize"
	"awam/internal/term"
	"awam/internal/transform"
	"awam/internal/wam"
)

// Typed errors. Failures returned by Load, LoadFile, Analyze and
// AnalyzeContext wrap one of these sentinels (and the underlying cause),
// so callers can branch with errors.Is without string matching.
var (
	// ErrParse reports unreadable Prolog source or an unparsable entry
	// calling pattern.
	ErrParse = errors.New("awam: parse error")
	// ErrCompile reports source that parsed but could not be compiled to
	// WAM code.
	ErrCompile = errors.New("awam: compile error")
	// ErrAnalysisBudget reports an analysis stopped by its abstract step
	// budget (WithMaxSteps).
	ErrAnalysisBudget = errors.New("awam: analysis budget exhausted")
	// ErrCanceled reports an analysis stopped by its context; the error
	// also wraps the context's cause (context.Canceled or
	// context.DeadlineExceeded).
	ErrCanceled = errors.New("awam: analysis canceled")
	// ErrBadOption reports an invalid analysis option value, such as a
	// negative depth or worker count.
	ErrBadOption = errors.New("awam: invalid analysis option")
)

// System is a loaded, compiled logic program.
type System struct {
	tab  *term.Tab
	prog *term.Program
	mod  *wam.Module

	// spec is the per-SCC specialized transfer program, built lazily on
	// the first specialized Analyze and shared by all later analyses of
	// this System (it depends only on the compiled code, not on analysis
	// options).
	specOnce sync.Once
	spec     *specialize.Program

	// bwdEng is the private backward-analysis engine, built lazily on the
	// first AnalyzeBackward without WithBackwardStore; its in-memory
	// store makes repeat demand queries on this System warm by default.
	bwdOnce sync.Once
	bwdEng  *backward.Engine
}

// specProgram builds (once) the specialized abstract transfer streams
// for this System's code: the module's condensation supplies the SCC
// components, a static opcode profile picks the fusion set, and
// pre-interning is enabled.
func (s *System) specProgram() *specialize.Program {
	s.specOnce.Do(func() {
		plan := inc.Condense(s.mod, core.Config{})
		comps := make([][]term.Functor, len(plan.SCCs))
		for i, scc := range plan.SCCs {
			comps[i] = scc.Members
		}
		s.spec = specialize.Build(s.mod, comps, specialize.StaticProfile(s.mod),
			specialize.Options{Fuse: true, PreIntern: true})
	})
	return s.spec
}

// Load parses and compiles Prolog source text. Unreadable source fails
// with an error wrapping ErrParse; source that parses but cannot be
// compiled fails with one wrapping ErrCompile.
func Load(source string) (*System, error) {
	tab := term.NewTab()
	prog, err := parser.ParseProgram(tab, source)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	mod, err := compiler.Compile(tab, prog)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCompile, err)
	}
	return &System{tab: tab, prog: prog, mod: mod}, nil
}

// LoadFile loads a program from a file.
func LoadFile(path string) (*System, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Load(string(src))
}

// Disasm returns the WAM code listing.
func (s *System) Disasm() string { return s.mod.Disasm() }

// CodeSize returns the static instruction count (Table 1 "Size").
func (s *System) CodeSize() int { return s.mod.Size() }

// Predicates lists the defined predicates as name/arity strings.
func (s *System) Predicates() []string {
	out := make([]string, len(s.prog.Order))
	for i, fn := range s.prog.Order {
		out[i] = s.tab.FuncString(fn)
	}
	return out
}

// Transform returns the Section 5 extension-table transformation of the
// program.
func (s *System) Transform() string { return transform.Program(s.tab, s.prog) }

// Solution is one answer of a concrete execution.
type Solution struct {
	// OK reports whether the goal (still) has a solution.
	OK bool
	// Bindings maps query-variable names to their values, written as
	// Prolog terms.
	Bindings map[string]string

	sys *System
	sol *machine.Solution
}

// Run executes a goal on the concrete WAM and returns its first
// solution.
func (s *System) Run(goal string) (*Solution, error) {
	m := machine.New(s.mod)
	m.Out = os.Stdout
	sol, err := m.Solve(goal)
	if err != nil {
		return nil, err
	}
	out := &Solution{sys: s, sol: sol}
	out.refresh()
	return out, nil
}

// RunMain executes main/0 and reports success.
func (s *System) RunMain() (bool, error) {
	m := machine.New(s.mod)
	m.Out = os.Stdout
	return m.RunMain()
}

// Next backtracks into the next solution.
func (sol *Solution) Next() (bool, error) {
	ok, err := sol.sol.Next()
	sol.refresh()
	return ok, err
}

func (sol *Solution) refresh() {
	sol.OK = sol.sol.OK
	sol.Bindings = make(map[string]string)
	if !sol.OK {
		return
	}
	for name, tm := range sol.sol.Bindings() {
		sol.Bindings[name] = sol.sys.tab.Write(tm)
	}
}

// AnalyzeOption configures Analyze.
type AnalyzeOption func(*analyzeCfg)

type analyzeCfg struct {
	cfg   core.Config
	entry string
	// tracer is the user's Tracer (observe.go); AnalyzeContext adapts it
	// onto the internal interface, which needs the symbol table.
	tracer Tracer
	// cache is the incremental summary cache (cache.go); strategySet
	// distinguishes an explicit WithStrategy choice from the default, so
	// the cache can upgrade the default to Worklist but reject a
	// deliberate conflicting pick.
	cache       Store
	strategySet bool
	// specOff disables the specialized transfer streams (they default
	// on; see WithSpecializedTransfer).
	specOff bool
	// err records the first invalid option; Analyze surfaces it instead
	// of running with a silently clamped configuration.
	err error
}

func (c *analyzeCfg) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithDepth sets the term-depth restriction (default 4, as in the
// paper). Negative depths are rejected by Analyze with ErrBadOption.
func WithDepth(k int) AnalyzeOption {
	return func(c *analyzeCfg) {
		if k < 0 {
			c.fail(fmt.Errorf("%w: negative depth %d", ErrBadOption, k))
			return
		}
		c.cfg.Depth = k
	}
}

// TableKind selects the extension-table representation for WithTable.
type TableKind int

const (
	// TableLinear is the paper's linear list of (calling-pattern,
	// success-pattern) pairs, searched sequentially (the default).
	TableLinear TableKind = iota
	// TableHash indexes the table by calling-pattern key.
	TableHash
)

// Strategy selects the fixpoint algorithm for WithStrategy.
type Strategy int

const (
	// Naive is the paper's scheme: iterate the whole analysis until no
	// success pattern changes (the default).
	Naive Strategy = iota
	// Worklist re-explores only the dependents of changed entries.
	Worklist
	// Parallel runs the worklist concurrently over a sharded table; size
	// the worker pool with WithParallelism. Results are byte-identical to
	// Worklist for every worker count and schedule.
	Parallel
)

// WithTable selects the extension-table representation. Values outside
// TableLinear and TableHash are rejected by Analyze with ErrBadOption.
func WithTable(k TableKind) AnalyzeOption {
	return func(c *analyzeCfg) {
		switch k {
		case TableLinear:
			c.cfg.Table = core.TableLinear
		case TableHash:
			c.cfg.Table = core.TableHash
		default:
			c.fail(fmt.Errorf("%w: unknown table kind %d", ErrBadOption, k))
		}
	}
}

// WithStrategy selects the fixpoint algorithm. Values outside Naive,
// Worklist and Parallel are rejected by Analyze with ErrBadOption.
func WithStrategy(s Strategy) AnalyzeOption {
	return func(c *analyzeCfg) {
		switch s {
		case Naive:
			c.cfg.Strategy = core.StrategyNaive
		case Worklist:
			c.cfg.Strategy = core.StrategyWorklist
		case Parallel:
			c.cfg.Strategy = core.StrategyParallel
		default:
			c.fail(fmt.Errorf("%w: unknown strategy %d", ErrBadOption, s))
			return
		}
		c.strategySet = true
	}
}

// WithHashTable replaces the paper's linear extension table by a hashed
// one.
//
// Deprecated: use WithTable(TableHash).
func WithHashTable() AnalyzeOption { return WithTable(TableHash) }

// WithoutIndexing makes the abstract machine explore every clause
// regardless of indexing instructions.
func WithoutIndexing() AnalyzeOption {
	return func(c *analyzeCfg) { c.cfg.Indexing = false }
}

// WithWorklist selects the dependency-tracking worklist fixpoint instead
// of the paper's naive iteration. Summaries are at least as precise and
// the worklist executes fewer abstract instructions; its table keeps
// only the calling patterns reachable at the fixpoint.
//
// Deprecated: use WithStrategy(Worklist).
func WithWorklist() AnalyzeOption { return WithStrategy(Worklist) }

// WithParallelism selects the parallel fixpoint engine with n workers
// over a sharded extension table. n = 0 sizes the pool to
// runtime.GOMAXPROCS(0); negative n is rejected by Analyze with
// ErrBadOption. The result is byte-identical to WithWorklist for every
// worker count and schedule.
func WithParallelism(n int) AnalyzeOption {
	return func(c *analyzeCfg) {
		if n < 0 {
			c.fail(fmt.Errorf("%w: negative worker count %d", ErrBadOption, n))
			return
		}
		c.cfg.Strategy = core.StrategyParallel
		c.cfg.Parallelism = n
		c.strategySet = true
	}
}

// WithMaxSteps bounds the number of abstract instructions the analysis
// may execute; exceeding it fails with ErrAnalysisBudget. Nonpositive
// budgets are rejected by Analyze with ErrBadOption. The budget is
// global: under WithParallelism every worker draws from the same shared
// pool, so the bound is independent of the worker count.
func WithMaxSteps(n int64) AnalyzeOption {
	return func(c *analyzeCfg) {
		if n <= 0 {
			c.fail(fmt.Errorf("%w: nonpositive step budget %d", ErrBadOption, n))
			return
		}
		c.cfg.MaxSteps = n
	}
}

// WithEntry analyzes from an explicit calling pattern, e.g.
// "append(list(g), list(g), var)", instead of main/0.
func WithEntry(pattern string) AnalyzeOption {
	return func(c *analyzeCfg) { c.entry = pattern }
}

// WithSpecializedTransfer toggles the per-SCC specialized abstract
// transfer streams (on by default). When on, the analysis executes each
// component's clauses from a flattened instruction stream with fused
// superinstructions and pre-resolved intra-SCC calls instead of the
// generic abstract-WAM switch; results — summaries, Marshal bytes, step
// counts, opcode histograms — are byte-identical either way, only the
// wall time differs. The specialization is built once per System and
// reused across analyses. A WithTracer analysis always runs the generic
// engine (the trace callbacks observe individual generic instructions).
func WithSpecializedTransfer(on bool) AnalyzeOption {
	return func(c *analyzeCfg) { c.specOff = !on }
}

// Analysis holds a finished dataflow analysis.
type Analysis struct {
	sys *System
	res *core.Result
	an  *core.Analyzer
	// inc is set when the analysis ran through a SummaryCache
	// (see Incremental in cache.go).
	inc *inc.Result
}

// AnalysisStats are run statistics (the paper's Table 1 columns).
type AnalysisStats struct {
	// Exec is the number of abstract WAM instructions executed.
	Exec int64
	// Iterations is the number of fixpoint passes.
	Iterations int
	// TableSize is the number of calling patterns in the extension
	// table.
	TableSize int
}

// Analyze runs the compiled dataflow analysis (the paper's abstract
// WAM). It is AnalyzeContext with a background context; see there for
// the errors it returns.
func (s *System) Analyze(opts ...AnalyzeOption) (*Analysis, error) {
	return s.AnalyzeContext(context.Background(), opts...)
}

// AnalyzeContext runs the compiled dataflow analysis under a context:
// cancellation or deadline expiry stops the fixpoint promptly — in every
// strategy, including all workers of the parallel engine — and fails
// with an error wrapping ErrCanceled and the context's cause.
//
// Other failures wrap ErrBadOption (an invalid option value, such as a
// negative depth or worker count), ErrParse (an unparsable WithEntry
// pattern) or ErrAnalysisBudget (the WithMaxSteps abstract-instruction
// budget was exhausted).
func (s *System) AnalyzeContext(ctx context.Context, opts ...AnalyzeOption) (*Analysis, error) {
	c := analyzeCfg{cfg: core.DefaultConfig()}
	for _, o := range opts {
		o(&c)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.tracer != nil {
		c.cfg.Tracer = coreTracer{tab: s.tab, t: c.tracer}
	}
	if !c.specOff && c.tracer == nil {
		c.cfg.Spec = s.specProgram()
	}
	if c.cache != nil && c.cache.engine() != nil {
		if err := c.validateCacheOptions(); err != nil {
			return nil, err
		}
		ir, err := c.cache.engine().AnalyzeAll(ctx, s.mod, c.cfg)
		if err != nil {
			return nil, wrapAnalysisErr(err)
		}
		return &Analysis{sys: s, res: ir.Result, an: core.New(s.mod), inc: ir}, nil
	}
	a := core.NewWith(s.mod, c.cfg)
	var res *core.Result
	var err error
	if c.entry == "" {
		res, err = a.AnalyzeAllContext(ctx)
	} else {
		var cp *domain.Pattern
		cp, err = domain.ParseAbs(s.tab, c.entry)
		if err != nil {
			return nil, fmt.Errorf("%w: entry pattern: %w", ErrParse, err)
		}
		res, err = a.AnalyzeContext(ctx, cp)
	}
	if err != nil {
		return nil, wrapAnalysisErr(err)
	}
	return &Analysis{sys: s, res: res, an: a}, nil
}

// wrapAnalysisErr maps internal analysis failures onto the package's
// typed errors, preserving the cause chain.
func wrapAnalysisErr(err error) error {
	switch {
	case errors.Is(err, core.ErrStepLimit):
		return fmt.Errorf("%w: %w", ErrAnalysisBudget, err)
	case errors.Is(err, core.ErrCanceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// System returns the system the analysis was computed for.
func (a *Analysis) System() *System { return a.sys }

// Report renders the extension table with modes and aliasing.
func (a *Analysis) Report() string { return a.res.Report() }

// Marshal serializes the analysis to a text summary loadable with
// LoadAnalysis (separate-compilation workflows).
func (a *Analysis) Marshal() string { return a.res.Marshal() }

// LoadAnalysis reads a summary produced by Analysis.Marshal for this
// system's programs.
func (s *System) LoadAnalysis(text string) (*Analysis, error) {
	res, err := core.Unmarshal(s.tab, text)
	if err != nil {
		return nil, err
	}
	return &Analysis{sys: s, res: res, an: core.New(s.mod)}, nil
}

// Determinacy reports, per calling pattern, whether at most one clause
// can match ("det pred(...)" / "nondet(N) pred(...)" lines).
func (a *Analysis) Determinacy() string {
	return core.DeterminacyReport(a.sys.tab, a.an.Determinacy(a.res))
}

// CallGraphDot renders the analysis-annotated call graph in Graphviz
// DOT.
func (a *Analysis) CallGraphDot() string {
	return core.CallGraphDot(a.sys.mod, a.res)
}

// Stats returns the run statistics.
func (a *Analysis) Stats() AnalysisStats {
	return AnalysisStats{
		Exec:       a.res.Steps,
		Iterations: a.res.Iterations,
		TableSize:  a.res.TableSize,
	}
}

// Predicates lists the predicates recorded in the analysis as
// "name/arity" strings, in extension-table order.
func (a *Analysis) Predicates() []string {
	fns := a.res.Predicates()
	out := make([]string, len(fns))
	for i, fn := range fns {
		out[i] = a.sys.tab.FuncString(fn)
	}
	return out
}

// findPred resolves a "name/arity" string.
func (a *Analysis) findPred(pred string) (term.Functor, bool) {
	for _, fn := range a.res.Predicates() {
		if a.sys.tab.FuncString(fn) == pred {
			return fn, true
		}
	}
	return term.Functor{}, false
}

// CallingPatterns returns the calling patterns recorded for a predicate
// given as "name/arity".
func (a *Analysis) CallingPatterns(pred string) []string {
	fn, ok := a.findPred(pred)
	if !ok {
		return nil
	}
	var out []string
	for _, e := range a.res.EntriesFor(fn) {
		out = append(out, e.CP.String(a.sys.tab))
	}
	sort.Strings(out)
	return out
}

// SuccessPattern returns the lubbed success pattern of a predicate, and
// whether any call of it can succeed. It is the convenience string form
// of Summary(pred).Success; use Summary for structured access.
func (a *Analysis) SuccessPattern(pred string) (string, bool) {
	s, ok := a.Summary(pred)
	if !ok || !s.Succeeds {
		return "", false
	}
	return s.Success, true
}

// Modes returns the derived mode declaration of a predicate. It is the
// convenience string form of Summary(pred).ModeString(); use Summary for
// per-argument Mode values.
func (a *Analysis) Modes(pred string) (string, bool) {
	s, ok := a.Summary(pred)
	if !ok || len(s.Args) == 0 {
		return "", false
	}
	return s.ModeString(), true
}

// AliasPairs returns the 1-based argument pairs that may share variables
// on success. It is the convenience form of Summary(pred).AliasPairs.
func (a *Analysis) AliasPairs(pred string) [][2]int {
	s, ok := a.Summary(pred)
	if !ok {
		return nil
	}
	return s.AliasPairs
}

// OptimizeStats reports what Specialize changed.
type OptimizeStats struct {
	// Specialized counts rewritten instructions by kind.
	Specialized map[string]int
	// Total is the number of rewritten instructions.
	Total int
	// PredsTouched is the number of predicates with rewrites.
	PredsTouched int
}

// Specialize returns a new System whose code is specialized using the
// analysis (read-only unification where arguments are proven nonvar).
// This is the ungated single-pass form kept for compatibility.
//
// Deprecated: use Optimize, which runs the full differentially-gated
// pass pipeline and reports per-pass deltas and measured speedup.
func (s *System) Specialize(a *Analysis) (*System, OptimizeStats) {
	opt, stats := optimize.Specialize(s.mod, a.res)
	return &System{tab: s.tab, prog: s.prog, mod: opt},
		OptimizeStats{Specialized: stats.Specialized, Total: stats.Total, PredsTouched: stats.PredsTouched}
}

// StripUnreachable returns a new System without the predicates the
// analysis proved unreachable from its entry point, and their
// name/arity strings. An analysis from a different System fails with an
// error wrapping ErrOptimize.
func (s *System) StripUnreachable(a *Analysis) (*System, []string, error) {
	if a == nil || a.sys == nil || a.sys.tab != s.tab {
		return nil, nil, fmt.Errorf("%w: analysis does not belong to this system", ErrOptimize)
	}
	stripped, removed := optimize.StripUnreachable(s.mod, a.res)
	names := make([]string, len(removed))
	for i, fn := range removed {
		names[i] = s.tab.FuncString(fn)
	}
	return &System{tab: s.tab, prog: s.prog, mod: stripped}, names, nil
}

// HostedResult is the outcome of the Prolog-hosted analysis.
type HostedResult struct {
	// Entries are "pattern -> success" strings of the mode table.
	Entries []string
	// Steps is the number of concrete WAM instructions the hosted
	// analyzer executed.
	Steps int64
	// Elapsed is the analysis wall time.
	Elapsed time.Duration
}

// HostedAnalyze runs the Prolog-hosted mode analyzer (the paper's
// comparison baseline) on this program.
func (s *System) HostedAnalyze() (*HostedResult, error) {
	r, err := plmeta.NewRunner(s.tab, s.prog)
	if err != nil {
		return nil, err
	}
	tbl, steps, dur, err := r.Run()
	if err != nil {
		return nil, err
	}
	return &HostedResult{Entries: r.TableEntries(tbl), Steps: steps, Elapsed: dur}, nil
}

// Version identifies the library.
const Version = "1.0.0"
