module awam

go 1.22
