package awam

import (
	"errors"
	"testing"
)

// TestOptionValidationExactErrors pins the exact error text of every
// option-validation failure, on top of the errors.Is sentinel checks in
// TestTypedErrors: callers log these messages, so they are part of the
// API surface.
func TestOptionValidationExactErrors(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  AnalyzeOption
		want string
	}{
		{"negative depth", WithDepth(-1), "awam: invalid analysis option: negative depth -1"},
		{"unknown table kind", WithTable(TableKind(99)), "awam: invalid analysis option: unknown table kind 99"},
		{"unknown table kind (negative)", WithTable(TableKind(-1)), "awam: invalid analysis option: unknown table kind -1"},
		{"unknown strategy", WithStrategy(Strategy(7)), "awam: invalid analysis option: unknown strategy 7"},
		{"negative workers", WithParallelism(-2), "awam: invalid analysis option: negative worker count -2"},
		{"zero budget", WithMaxSteps(0), "awam: invalid analysis option: nonpositive step budget 0"},
		{"negative budget", WithMaxSteps(-5), "awam: invalid analysis option: nonpositive step budget -5"},
	}
	for _, c := range cases {
		_, err := sys.Analyze(c.opt)
		if !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", c.name, err)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("%s: err = %q, want %q", c.name, err.Error(), c.want)
		}
	}
}

// TestOptionFirstErrorWins: with several invalid options, Analyze
// reports the first one, and an invalid option beats a bad WithEntry
// pattern (options are validated before the entry is parsed).
func TestOptionFirstErrorWins(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Analyze(WithDepth(-3), WithParallelism(-7))
	if err == nil || err.Error() != "awam: invalid analysis option: negative depth -3" {
		t.Fatalf("err = %v, want the first option's error", err)
	}
	_, err = sys.Analyze(WithEntry("rev("), WithMaxSteps(-1))
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("err = %v, want ErrBadOption before entry parsing", err)
	}
	// A failed call must not poison the system: the same receiver
	// analyzes fine immediately afterwards.
	if _, err := sys.Analyze(); err != nil {
		t.Fatalf("analysis after failed option validation: %v", err)
	}
}

// TestOptionBoundaryValues: zero is valid where the docs say it is —
// WithParallelism(0) auto-sizes the pool, WithDepth(0) is an extreme
// but legal widening — and repeated or overridden options follow
// last-one-wins without tripping validation.
func TestOptionBoundaryValues(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Analyze(WithParallelism(0)); err != nil {
		t.Fatalf("WithParallelism(0) must auto-size, got %v", err)
	}
	a0, err := sys.Analyze(WithDepth(0))
	if err != nil {
		t.Fatalf("WithDepth(0): %v", err)
	}
	if a0.Stats().TableSize == 0 {
		t.Fatal("depth-0 analysis produced an empty table")
	}
	// Later options override earlier ones; an overridden invalid value
	// still fails (validation happens at application time).
	if _, err := sys.Analyze(WithDepth(2), WithDepth(6)); err != nil {
		t.Fatalf("repeated WithDepth: %v", err)
	}
	if _, err := sys.Analyze(WithDepth(-1), WithDepth(6)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("overridden invalid depth = %v, want ErrBadOption", err)
	}
}

// TestOptionCombos: strategy/table combinations and the deprecated
// aliases all converge on the same summaries — WithHashTable is
// WithTable(TableHash), WithWorklist is WithStrategy(Worklist), and
// mixing strategy selectors follows last-one-wins.
func TestOptionCombos(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	want := base.Marshal()
	combos := []struct {
		name string
		opts []AnalyzeOption
	}{
		{"hash table", []AnalyzeOption{WithTable(TableHash)}},
		{"deprecated hash alias", []AnalyzeOption{WithHashTable()}},
		{"worklist", []AnalyzeOption{WithStrategy(Worklist)}},
		{"deprecated worklist alias", []AnalyzeOption{WithWorklist()}},
		{"worklist + hash", []AnalyzeOption{WithWorklist(), WithHashTable()}},
		{"parallel + hash table", []AnalyzeOption{WithParallelism(2), WithTable(TableHash)}},
		{"parallel then worklist (last strategy wins)", []AnalyzeOption{WithParallelism(2), WithStrategy(Worklist)}},
		{"worklist then parallel (last strategy wins)", []AnalyzeOption{WithWorklist(), WithParallelism(2)}},
		{"explicit naive", []AnalyzeOption{WithStrategy(Naive), WithTable(TableLinear)}},
	}
	for _, c := range combos {
		a, err := sys.Analyze(c.opts...)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if a.Marshal() != want {
			t.Errorf("%s: summaries differ from the default configuration", c.name)
		}
	}
}
