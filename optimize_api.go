package awam

import (
	"errors"
	"fmt"

	"awam/internal/optimize"
)

// ErrOptimize reports an optimization failure: a pass that failed to
// apply or — more importantly — a pass whose output the differential
// runtime gate rejected because it changed observable answers. The
// error chain includes the failing pass's name (via the wrapped
// *optimize.PassError or *optimize.GateError).
var ErrOptimize = errors.New("awam: optimization failed")

// OptimizeOption configures System.Optimize.
type OptimizeOption func(*optimizeCfg)

type optimizeCfg struct {
	passes      []string
	gateGoals   []string
	measureRuns int
	err         error
}

func (c *optimizeCfg) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithPasses selects which optimizer passes run, in the given order
// (default: every registered pass in canonical order; see PassNames).
// Unknown names are rejected by Optimize with ErrBadOption.
func WithPasses(names ...string) OptimizeOption {
	return func(c *optimizeCfg) {
		for _, n := range names {
			if _, err := optimize.PassByName(n); err != nil {
				c.fail(fmt.Errorf("%w: %w", ErrBadOption, err))
				return
			}
		}
		c.passes = names
	}
}

// WithGateGoals adds goals to the differential gate (and to the runtime
// measurement when main/0 is absent). The goals run on the optimized
// and the unoptimized machine after every pass; any answer difference
// rejects the pass. By default the gate runs main when the program
// defines main/0.
//
// The gate goals should exercise the program the way the analysis entry
// does: a transformation like dead-clause elimination is justified only
// for the call classes the analysis recorded, and a goal outside them
// may (correctly) be rejected by the gate.
func WithGateGoals(goals ...string) OptimizeOption {
	return func(c *optimizeCfg) { c.gateGoals = append(c.gateGoals, goals...) }
}

// WithMeasureRuns sets how many timed runs the speedup measurement
// performs per module (fastest run wins); 0 disables measurement and
// negative values are rejected by Optimize with ErrBadOption. The
// default is 3.
func WithMeasureRuns(n int) OptimizeOption {
	return func(c *optimizeCfg) {
		if n < 0 {
			c.fail(fmt.Errorf("%w: negative measure runs %d", ErrBadOption, n))
			return
		}
		c.measureRuns = n
	}
}

// PassNames lists the registered optimizer passes in canonical order.
func PassNames() []string { return optimize.PassNames() }

// PassReport is one pipeline step of an OptimizeReport.
type PassReport struct {
	// Name is the pass.
	Name string `json:"name"`
	// Rewrites counts changes by kind; Total sums them.
	Rewrites map[string]int `json:"rewrites,omitempty"`
	Total    int            `json:"total"`
	// PredsTouched counts predicates with at least one change.
	PredsTouched int `json:"preds_touched"`
	// InstrDelta is the code-size change in instructions; ClauseDelta
	// the change in dispatched clauses.
	InstrDelta  int `json:"instr_delta"`
	ClauseDelta int `json:"clause_delta"`
	// Rejected marks a pass the differential gate refused; its output
	// was discarded and RejectReason says why.
	Rejected     bool   `json:"rejected,omitempty"`
	RejectReason string `json:"reject_reason,omitempty"`
}

// OptimizeReport describes what an Optimize call did: the per-pass
// deltas, the gate configuration, and — when measurement ran — the
// machine-runtime speedup of the optimized module.
type OptimizeReport struct {
	// Passes are the pipeline steps in execution order.
	Passes []PassReport `json:"passes"`
	// CodeBefore/CodeAfter are module instruction counts.
	CodeBefore int `json:"code_before"`
	CodeAfter  int `json:"code_after"`
	// GateGoals are the goals the differential gate verified.
	GateGoals []string `json:"gate_goals,omitempty"`
	// Measured reports whether the runtime measurement ran (it needs a
	// runnable goal: main/0 or a gate goal).
	Measured bool `json:"measured"`
	// MeasureGoal/MeasureRuns describe the measurement; BaselineNS and
	// OptimizedNS are the fastest wall times, BaselineSteps and
	// OptimizedSteps the executed-instruction counts of those runs.
	MeasureGoal    string `json:"measure_goal,omitempty"`
	MeasureRuns    int    `json:"measure_runs,omitempty"`
	BaselineNS     int64  `json:"baseline_ns,omitempty"`
	OptimizedNS    int64  `json:"optimized_ns,omitempty"`
	BaselineSteps  int64  `json:"baseline_steps,omitempty"`
	OptimizedSteps int64  `json:"optimized_steps,omitempty"`
	// Speedup is BaselineNS/OptimizedNS; StepRatio is
	// BaselineSteps/OptimizedSteps. Zero when not measured.
	Speedup   float64 `json:"speedup,omitempty"`
	StepRatio float64 `json:"step_ratio,omitempty"`
}

// Optimize runs the analysis-driven optimizer pipeline over the system:
// unreachable-predicate stripping, dead-clause elimination with
// choice-point removal for determinate predicates, analysis-directed
// first-argument indexing, and unification specialization (WithPasses
// selects a subset). Every pass is differentially gated: the gate goals
// (main/0 by default, WithGateGoals adds more) run on the optimized and
// the unoptimized machine and must produce identical answer sequences;
// a pass that changes any answer makes Optimize fail with an error
// wrapping ErrOptimize naming the pass — its output is never shipped.
//
// On success the report carries per-pass instruction and clause deltas
// and, unless WithMeasureRuns(0) disabled it, the measured machine
// runtime speedup. On gate rejection the report is still returned
// alongside the error so callers can see which pass failed and why.
func (s *System) Optimize(a *Analysis, opts ...OptimizeOption) (*System, *OptimizeReport, error) {
	// The analysis must come from this system or one derived from it
	// (Specialize/StripUnreachable chains share the symbol table).
	if a == nil || a.sys == nil || a.sys.tab != s.tab {
		return nil, nil, fmt.Errorf("%w: analysis does not belong to this system", ErrOptimize)
	}
	cfg := optimizeCfg{measureRuns: 3}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, nil, cfg.err
	}
	var passes []optimize.Pass
	if cfg.passes != nil {
		for _, n := range cfg.passes {
			p, err := optimize.PassByName(n)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %w", ErrBadOption, err)
			}
			passes = append(passes, p)
		}
	}
	goals := cfg.gateGoals
	if s.mod.Proc(s.tab.Func("main", 0)) != nil {
		goals = append([]string{"main"}, goals...)
	}
	pl := optimize.Pipeline{Passes: passes, Gate: &optimize.Gate{Goals: goals}}
	mod, outcomes, err := pl.Run(s.mod, a.res)
	report := &OptimizeReport{
		CodeBefore: s.mod.Size(),
		CodeAfter:  mod.Size(),
		GateGoals:  goals,
	}
	for _, oc := range outcomes {
		report.Passes = append(report.Passes, PassReport{
			Name:         oc.Name,
			Rewrites:     oc.Stats.Rewrites,
			Total:        oc.Stats.Total,
			PredsTouched: oc.Stats.PredsTouched,
			InstrDelta:   oc.Stats.InstrDelta,
			ClauseDelta:  oc.Stats.ClauseDelta,
			Rejected:     oc.Rejected,
			RejectReason: oc.RejectReason,
		})
	}
	if err != nil {
		return nil, report, fmt.Errorf("%w: %w", ErrOptimize, err)
	}
	if cfg.measureRuns > 0 && len(goals) > 0 {
		report.MeasureGoal = goals[0]
		report.MeasureRuns = cfg.measureRuns
		baseNS, baseSteps, berr := optimize.Measure(s.mod, goals[0], cfg.measureRuns)
		optNS, optSteps, oerr := optimize.Measure(mod, goals[0], cfg.measureRuns)
		if berr == nil && oerr == nil {
			report.Measured = true
			report.BaselineNS = baseNS.Nanoseconds()
			report.OptimizedNS = optNS.Nanoseconds()
			report.BaselineSteps = baseSteps
			report.OptimizedSteps = optSteps
			if report.OptimizedNS > 0 {
				report.Speedup = float64(report.BaselineNS) / float64(report.OptimizedNS)
			}
			if optSteps > 0 {
				report.StepRatio = float64(baseSteps) / float64(optSteps)
			}
		}
	}
	return &System{tab: s.tab, prog: s.prog, mod: mod}, report, nil
}
