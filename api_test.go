package awam

import (
	"context"
	"errors"
	"testing"
)

const apiProg = `
main :- rev([1,2,3], R), use(R).
rev([], []).
rev([X|T], R) :- rev(T, RT), app(RT, [X], R).
app([], L, L).
app([X|L1], L2, [X|L3]) :- app(L1, L2, L3).
use(_).
`

// TestTypedErrors: every failure class wraps its documented sentinel.
func TestTypedErrors(t *testing.T) {
	if _, err := Load("p(a"); !errors.Is(err, ErrParse) {
		t.Fatalf("syntax error = %v, want ErrParse", err)
	}
	if _, err := Load("is(X, X)."); !errors.Is(err, ErrCompile) {
		t.Fatalf("builtin redefinition = %v, want ErrCompile", err)
	}
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Analyze(WithEntry("rev(")); !errors.Is(err, ErrParse) {
		t.Fatalf("bad entry pattern = %v, want ErrParse", err)
	}
	if _, err := sys.Analyze(WithDepth(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative depth = %v, want ErrBadOption", err)
	}
	if _, err := sys.Analyze(WithParallelism(-2)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative parallelism = %v, want ErrBadOption", err)
	}
	if _, err := sys.Analyze(WithMaxSteps(-1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative budget = %v, want ErrBadOption", err)
	}
	if _, err := sys.Analyze(WithMaxSteps(3)); !errors.Is(err, ErrAnalysisBudget) {
		t.Fatalf("tiny budget = %v, want ErrAnalysisBudget", err)
	}
}

// TestAnalyzeContextCancellation: a canceled context surfaces as
// ErrCanceled wrapping the context cause, for the sequential and
// parallel engines alike.
func TestAnalyzeContextCancellation(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range [][]AnalyzeOption{
		nil,
		{WithStrategy(Worklist)},
		{WithParallelism(4)},
	} {
		_, err := sys.AnalyzeContext(ctx, opts...)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("opts %v: err = %v, want ErrCanceled", opts, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("opts %v: err = %v, want context.Canceled in chain", opts, err)
		}
	}
}

// TestParallelOption: the parallel engine, including the n=0 auto-sized
// pool, reproduces the worklist result byte for byte through the facade.
func TestParallelOption(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sys.Analyze(WithStrategy(Worklist))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 4} {
		par, err := sys.Analyze(WithParallelism(n))
		if err != nil {
			t.Fatalf("parallelism %d: %v", n, err)
		}
		if par.Report() != wl.Report() {
			t.Fatalf("parallelism %d: report differs from worklist:\n%s\nvs\n%s",
				n, par.Report(), wl.Report())
		}
		if par.Marshal() != wl.Marshal() {
			t.Fatalf("parallelism %d: marshal differs from worklist", n)
		}
	}
}
