// Compare: the paper's central measurement on one benchmark. The same
// program is analyzed four ways — by the compiled abstract WAM, by a Go
// meta-interpreter over source clauses, by a mode analyzer written in
// Prolog running on the concrete WAM (the "Aquarius under Quintus"
// stand-in), and by the transforming approach (the analysis partially
// evaluated into a Prolog program) — and the analysis times are
// compared. The paper's ranking (meta-interpretation < transformation <
// compiled abstract WAM) falls out.
package main

import (
	"fmt"
	"log"
	"time"

	"awam"
	"awam/internal/baseline"
	"awam/internal/bench"
	"awam/internal/parser"
	"awam/internal/term"
	"awam/internal/transrun"
)

func main() {
	prog, _ := bench.ByName("serialise")
	sys, err := awam.Load(prog.Source)
	if err != nil {
		log.Fatal(err)
	}

	// Compiled abstract WAM (the paper's contribution).
	start := time.Now()
	analysis, err := sys.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	compiled := time.Since(start)

	// Go meta-interpreter over source clauses (same domain).
	tab := term.NewTab()
	p, err := parser.ParseProgram(tab, prog.Source)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	metaRes, err := baseline.New(tab, p).AnalyzeMain()
	if err != nil {
		log.Fatal(err)
	}
	meta := time.Since(start)

	// Prolog-hosted analyzer on the concrete WAM.
	hosted, err := sys.HostedAnalyze()
	if err != nil {
		log.Fatal(err)
	}

	// The transforming approach: partially evaluated analysis on the WAM.
	tr, err := transrun.NewRunner(tab, p)
	if err != nil {
		log.Fatal(err)
	}
	trEntries, trSteps, trTime, err := tr.Run()
	if err != nil {
		log.Fatal(err)
	}

	st := analysis.Stats()
	fmt.Printf("benchmark: %s\n\n", prog.Name)
	fmt.Printf("%-34s %12s %10s\n", "analyzer", "time", "vs compiled")
	fmt.Printf("%-34s %12v %10s\n", "compiled abstract WAM", compiled, "1.0x")
	fmt.Printf("%-34s %12v %9.1fx\n", "Go meta-interpreter", meta, float64(meta)/float64(compiled))
	fmt.Printf("%-34s %12v %9.1fx\n", "transformed program (on WAM)", trTime,
		float64(trTime)/float64(compiled))
	fmt.Printf("%-34s %12v %9.1fx\n", "Prolog-hosted meta-interpreter", hosted.Elapsed,
		float64(hosted.Elapsed)/float64(compiled))

	fmt.Printf("\ncompiled analyzer: %d abstract instructions, %d calling patterns, %d iterations\n",
		st.Exec, st.TableSize, st.Iterations)
	fmt.Printf("meta-interpreter:  %d abstract operations, identical results: %v\n",
		metaRes.Steps, sameResults(analysis, metaRes.TableSize))
	fmt.Printf("transformed:       %d concrete WAM instructions for %d mode entries\n",
		trSteps, len(trEntries))
	fmt.Printf("hosted analyzer:   %d concrete WAM instructions for %d mode entries\n",
		hosted.Steps, len(hosted.Entries))
}

func sameResults(a *awam.Analysis, metaTableSize int) bool {
	return a.Stats().TableSize == metaTableSize
}
