// Toolchain: the full analysis-driven workflow on one program — analyze
// with the worklist fixpoint, inspect determinacy, save the summary,
// reload it, specialize and strip the code with it, and emit the
// annotated call graph.
package main

import (
	"fmt"
	"log"

	"awam"
)

const program = `
main :- run([5,3,8,1], S), out(S).

run(L, S) :- msort(L, S).

msort([], []).
msort([X], [X]) :- !.
msort(L, S) :-
	split(L, A, B),
	msort(A, SA),
	msort(B, SB),
	merge(SA, SB, S).

split([], [], []).
split([X|R], [X|A], B) :- split(R, B, A).

merge([], L, L) :- !.
merge(L, [], L) :- !.
merge([X|Xs], [Y|Ys], [X|R]) :- X =< Y, !, merge(Xs, [Y|Ys], R).
merge(Xs, [Y|Ys], [Y|R]) :- merge(Xs, Ys, R).

out(_).

% never called:
debug_dump(T) :- out(T), out(T).
`

func main() {
	sys, err := awam.Load(program)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Analyze with the worklist fixpoint (Section 6's future work).
	analysis, err := sys.Analyze(awam.WithStrategy(awam.Worklist))
	if err != nil {
		log.Fatal(err)
	}
	succ, _ := analysis.SuccessPattern("msort/2")
	mode, _ := analysis.Modes("msort/2")
	fmt.Println("msort/2:", succ, " mode", mode)

	// 2. Determinacy: which call classes need no choice points?
	fmt.Println("\ndeterminacy:")
	fmt.Print(analysis.Determinacy())

	// 3. Save the summary and reload it (separate compilation).
	saved := analysis.Marshal()
	reloaded, err := sys.LoadAnalysis(saved)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsummary: %d bytes, survives reload: %v\n",
		len(saved), reloaded.Stats().TableSize == analysis.Stats().TableSize)

	// 4. Optimize with the reloaded analysis: the gated pass pipeline
	// strips dead predicates, removes dead clauses, indexes and
	// specializes, verifying main/0's answers after every pass.
	opt, report, err := sys.Optimize(reloaded)
	if err != nil {
		log.Fatal("optimization rejected: ", err)
	}
	for _, p := range report.Passes {
		fmt.Printf("pass %-18s rewrites=%d\n", p.Name, p.Total)
	}
	if ok, err := opt.RunMain(); err != nil || !ok {
		log.Fatal("optimized program failed: ", err)
	}
	fmt.Println("optimized program runs: true")

	// 5. The annotated call graph (pipe into `dot -Tsvg`).
	fmt.Println("\ncall graph:")
	fmt.Print(analysis.CallGraphDot())
}
