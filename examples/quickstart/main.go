// Quickstart: load a Prolog program, run it, and ask the compiled
// dataflow analyzer what it can prove about each predicate — modes,
// types (including parameterized lists) and argument aliasing.
package main

import (
	"fmt"
	"log"

	"awam"
)

const program = `
main :- nrev([1,2,3,4,5,6,7,8], R), out(R).

nrev([], []).
nrev([X|L], R) :- nrev(L, R1), app(R1, [X], R).

app([], L, L).
app([X|L1], L2, [X|L3]) :- app(L1, L2, L3).

out(_).
`

func main() {
	sys, err := awam.Load(program)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Concrete execution on the WAM.
	sol, err := sys.Run("nrev([a,b,c], R)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("concrete answer:  R =", sol.Bindings["R"])

	// 2. Compiled dataflow analysis (the paper's abstract WAM).
	analysis, err := sys.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("what the analysis proved:")
	for _, pred := range []string{"nrev/2", "app/3"} {
		succ, _ := analysis.SuccessPattern(pred)
		modes, _ := analysis.Modes(pred)
		fmt.Printf("  %-8s success %-40s mode %s\n", pred, succ, modes)
	}
	st := analysis.Stats()
	fmt.Printf("\nanalysis cost: %d abstract instructions, %d calling patterns, %d iterations\n",
		st.Exec, st.TableSize, st.Iterations)

	// 3. The full extension-table report.
	fmt.Println()
	fmt.Print(analysis.Report())
}
