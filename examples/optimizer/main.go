// Optimizer: the paper's motivation in action. The analysis proves qsort
// is always called with a ground list, so the head unification code can
// drop its write-mode and binding paths; the specialized module runs the
// same workload and the machine verifies no specialized instruction ever
// meets an unbound variable.
package main

import (
	"fmt"
	"log"

	"awam"
)

const program = `
main :- qsort([27,74,17,33,94,18,46,83,65,2,
               32,53,28,85,99,47,28,82,6,11], S, []), out(S).

qsort([X|L], R, R0) :-
	partition(L, X, L1, L2),
	qsort(L2, R1, R0),
	qsort(L1, R, [X|R1]).
qsort([], R, R).

partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).

out(_).
`

func main() {
	sys, err := awam.Load(program)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := sys.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	modes, _ := analysis.Modes("qsort/3")
	fmt.Println("inferred modes:   ", modes)
	modes, _ = analysis.Modes("partition/4")
	fmt.Println("inferred modes:   ", modes)

	// The pipeline strips, drops dead clauses, indexes and specializes;
	// every pass is differentially gated on main/0 — a pass that changed
	// any answer would make Optimize fail instead of shipping it.
	opt, report, err := sys.Optimize(analysis)
	if err != nil {
		log.Fatal("optimization rejected: ", err)
	}
	fmt.Println()
	for _, p := range report.Passes {
		fmt.Printf("pass %-18s rewrites=%-3d preds=%-2d instrs%+d clauses%+d\n",
			p.Name, p.Total, p.PredsTouched, p.InstrDelta, p.ClauseDelta)
	}
	if report.Measured {
		fmt.Printf("measured speedup on %s: %.2fx wall, %.2fx steps\n",
			report.MeasureGoal, report.Speedup, report.StepRatio)
	}

	ok, err := opt.RunMain()
	if err != nil {
		log.Fatal("optimized run failed — the analysis would be unsound: ", err)
	}
	fmt.Printf("\noptimized module runs main/0: %v (no specialized instruction met a variable)\n", ok)
}
