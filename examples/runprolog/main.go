// Runprolog: the concrete side of Figure 1. A complete Prolog workload —
// the zebra puzzle — compiled to WAM code and executed with full
// backtracking, demonstrating that the substrate under the analyzer is a
// real logic programming system.
package main

import (
	"fmt"
	"log"

	"awam"
)

const zebra = `
zebra(Houses, Water, Zebra) :-
	Houses = [house(_, norwegian, _, _, _), _,
	          house(_, _, _, milk, _), _, _],
	member(house(red, englishman, _, _, _), Houses),
	member(house(_, spaniard, dog, _, _), Houses),
	member(house(green, _, _, coffee, _), Houses),
	member(house(_, ukrainian, _, tea, _), Houses),
	right_of(house(green, _, _, _, _), house(ivory, _, _, _, _), Houses),
	member(house(_, _, snails, _, winston), Houses),
	member(house(yellow, _, _, _, kools), Houses),
	next_to(house(_, _, _, _, chesterfields), house(_, _, fox, _, _), Houses),
	next_to(house(_, _, _, _, kools), house(_, _, horse, _, _), Houses),
	member(house(_, _, _, orange_juice, lucky_strike), Houses),
	member(house(_, japanese, _, _, parliaments), Houses),
	next_to(house(_, norwegian, _, _, _), house(blue, _, _, _, _), Houses),
	member(house(_, Water, _, water, _), Houses),
	member(house(_, Zebra, zebra, _, _), Houses).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
right_of(R, L, [L, R|_]).
right_of(R, L, [_|T]) :- right_of(R, L, T).
next_to(X, Y, L) :- right_of(X, Y, L).
next_to(X, Y, L) :- right_of(Y, X, L).
`

func main() {
	sys, err := awam.Load(zebra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %v to %d WAM instructions\n\n", sys.Predicates(), sys.CodeSize())

	sol, err := sys.Run("zebra(Houses, Water, Zebra)")
	if err != nil {
		log.Fatal(err)
	}
	if !sol.OK {
		log.Fatal("puzzle unexpectedly unsolvable")
	}
	fmt.Println("the", sol.Bindings["Water"], "drinks water")
	fmt.Println("the", sol.Bindings["Zebra"], "owns the zebra")
	fmt.Println("\nhouses:", sol.Bindings["Houses"])
}
