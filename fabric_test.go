package awam_test

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"awam"
	"awam/internal/serve"
)

// These tests exercise the summary fabric end to end at the facade
// level: one daemon's HTTP store routes serve another process's remote
// tier. They live in package awam_test so the facade is used exactly
// as an importing client would, while still being able to stand up a
// real daemon handler from internal/serve.

const fabricProg = `
main :- rev([1,2,3], R), len(R, N), use(N).
rev([], []).
rev([X|Xs], R) :- rev(Xs, T), app(T, [X], R).
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
use(_).
`

// startDaemon stands up a daemon over the given store and returns its
// base URL.
func startDaemon(t *testing.T, store awam.Store) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func analyze(t *testing.T, src string, opts ...awam.AnalyzeOption) *awam.Analysis {
	t.Helper()
	sys, err := awam.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Analyze(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFabricWarmStart: daemon A computes; daemon B, cold in memory and
// disk, warm-starts entirely over A's store routes — byte-identical to
// a from-scratch analysis.
func TestFabricWarmStart(t *testing.T) {
	storeA, err := awam.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	tsA := startDaemon(t, storeA)

	ref := analyze(t, fabricProg, awam.WithStrategy(awam.Worklist))

	// Prime A through its own engine (as a request to daemon A would).
	if res := analyze(t, fabricProg, awam.WithSummaryCache(storeA)); res.Marshal() != ref.Marshal() {
		t.Fatal("daemon A's analysis differs from scratch")
	}

	storeB, err := awam.NewStore(awam.WithRemote(tsA.URL))
	if err != nil {
		t.Fatal(err)
	}
	res := analyze(t, fabricProg, awam.WithSummaryCache(storeB))
	if res.Marshal() != ref.Marshal() {
		t.Fatal("fabric-served analysis differs from scratch")
	}
	inc, ok := res.Incremental()
	if !ok || inc.SCCs == 0 || inc.WarmSCCs != inc.SCCs {
		t.Fatalf("daemon B warm-started %d/%d components over the fabric", inc.WarmSCCs, inc.SCCs)
	}
	st := storeB.Stats()
	if st.RemoteLoads == 0 {
		t.Fatalf("no records faulted over the fabric: %+v", st)
	}
	if st.RemoteErrors != 0 || st.Degraded {
		t.Fatalf("healthy fabric surfaced errors: %+v", st)
	}
	// Far fewer round trips than components: the engine prefetches.
	if st.RemoteRoundTrips > int64(inc.SCCs) {
		t.Fatalf("%d round trips for %d components — prefetch not batching", st.RemoteRoundTrips, inc.SCCs)
	}
}

// TestFabricEditReuse: after an edit, daemon B reuses the clean cone
// from the fabric and recomputes only the dirty components, still
// byte-identical to scratch.
func TestFabricEditReuse(t *testing.T) {
	storeA, err := awam.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	tsA := startDaemon(t, storeA)
	analyze(t, fabricProg, awam.WithSummaryCache(storeA))

	edited := fabricProg + "\nuse(extra_clause).\n"
	ref := analyze(t, edited, awam.WithStrategy(awam.Worklist))

	storeB, err := awam.NewStore(awam.WithRemote(tsA.URL))
	if err != nil {
		t.Fatal(err)
	}
	res := analyze(t, edited, awam.WithSummaryCache(storeB))
	if res.Marshal() != ref.Marshal() {
		t.Fatal("fabric-assisted edit analysis differs from scratch")
	}
	inc, ok := res.Incremental()
	if !ok || inc.WarmSCCs == 0 || inc.WarmSCCs >= inc.SCCs {
		t.Fatalf("edit should be part warm (fabric), part dirty: %+v", inc)
	}
	// The dirty cone's records were flushed back to A: a third cold
	// store now warm-starts the edited program fully from the fabric.
	storeC, err := awam.NewStore(awam.WithRemote(tsA.URL))
	if err != nil {
		t.Fatal(err)
	}
	resC := analyze(t, edited, awam.WithSummaryCache(storeC))
	if resC.Marshal() != ref.Marshal() {
		t.Fatal("round-tripped edit analysis differs from scratch")
	}
	if incC, ok := resC.Incremental(); !ok || incC.WarmSCCs != incC.SCCs {
		t.Fatalf("B's flush did not propagate the dirty cone to A: %+v", incC)
	}
}

// TestFabricOutageMidRun: the peer dies between daemon B's first and
// second analysis. Every analysis still succeeds with byte-identical
// output and no surfaced error; the store reports the degradation in
// its stats instead.
func TestFabricOutageMidRun(t *testing.T) {
	storeA, err := awam.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	tsA := startDaemon(t, storeA)
	analyze(t, fabricProg, awam.WithSummaryCache(storeA))

	// A flaky front door for daemon A: once `down` flips, every request
	// is a 503 — the shape of a crashed pod behind a load balancer.
	var down atomic.Bool
	target, err := url.Parse(tsA.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "upstream gone", http.StatusServiceUnavailable)
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Scheme = target.Scheme
		r2.URL.Host = target.Host
		r2.RequestURI = ""
		resp, err := http.DefaultTransport.RoundTrip(r2)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				break
			}
		}
	}))
	defer proxy.Close()

	ref := analyze(t, fabricProg, awam.WithStrategy(awam.Worklist))
	storeB, err := awam.NewStore(awam.WithRemote(proxy.URL,
		awam.WithRemoteRetries(1),
		awam.WithRemoteTimeout(time.Second),
		awam.WithRemoteBreaker(2, 50*time.Millisecond),
	))
	if err != nil {
		t.Fatal(err)
	}

	// Healthy: warm over the fabric.
	res1 := analyze(t, fabricProg, awam.WithSummaryCache(storeB))
	if res1.Marshal() != ref.Marshal() {
		t.Fatal("pre-outage analysis differs from scratch")
	}

	// Outage. A fresh store (cold local tiers, dead peer) must still
	// produce the identical result with no error — just slower.
	down.Store(true)
	storeB2, err := awam.NewStore(awam.WithRemote(proxy.URL,
		awam.WithRemoteRetries(0),
		awam.WithRemoteTimeout(time.Second),
		awam.WithRemoteBreaker(1, time.Minute),
	))
	if err != nil {
		t.Fatal(err)
	}
	res2 := analyze(t, fabricProg, awam.WithSummaryCache(storeB2))
	if res2.Marshal() != ref.Marshal() {
		t.Fatal("mid-outage analysis differs from scratch")
	}
	st := storeB2.Stats()
	if st.RemoteErrors == 0 || !st.Degraded {
		t.Fatalf("outage not visible in stats: %+v", st)
	}
	if inc, ok := res2.Incremental(); !ok || inc.WarmSCCs != 0 {
		t.Fatalf("dead peer somehow warmed components: %+v", inc)
	}

	// The primed store B still serves warm from its local tiers during
	// the outage — the fabric is an accelerator, not a dependency.
	res3 := analyze(t, fabricProg, awam.WithSummaryCache(storeB))
	if res3.Marshal() != ref.Marshal() {
		t.Fatal("post-outage local-tier analysis differs from scratch")
	}
	if inc, ok := res3.Incremental(); !ok || inc.WarmSCCs != inc.SCCs {
		t.Fatalf("local tiers lost their records during the outage: %+v", inc)
	}
}
