package awam

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// observeProg is the naive-reverse fixture used across the
// observability tests; small, recursive, and strategy-sensitive.
const observeProg = `
main :- nrev([1,2,3,4,5], R), use(R).
nrev([], []).
nrev([X|T], R) :- nrev(T, RT), append(RT, [X], R).
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
use(_).
`

// observeStrategies enumerates the option sets the metrics invariants
// must hold under.
var observeStrategies = []struct {
	name string
	opts []AnalyzeOption
}{
	{"naive", nil},
	{"worklist", []AnalyzeOption{WithStrategy(Worklist)}},
	{"parallel-1", []AnalyzeOption{WithParallelism(1)}},
	{"parallel-4", []AnalyzeOption{WithParallelism(4)}},
}

// TestMetricsTotals: under every strategy the per-predicate step
// attribution and the opcode histogram each partition Stats().Exec
// exactly, and the table counters are internally consistent.
func TestMetricsTotals(t *testing.T) {
	sys, err := Load(observeProg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range observeStrategies {
		t.Run(sc.name, func(t *testing.T) {
			an, err := sys.Analyze(sc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			exec := an.Stats().Exec
			m := an.Metrics()
			var predSum, opSum int64
			for _, p := range m.Predicates {
				predSum += p.Steps
			}
			for _, op := range m.Opcodes {
				opSum += op.Count
			}
			if predSum != exec {
				t.Errorf("predicate steps sum to %d, Stats().Exec = %d", predSum, exec)
			}
			if opSum != exec {
				t.Errorf("opcode counts sum to %d, Stats().Exec = %d", opSum, exec)
			}
			if m.TableMisses != m.TableInserts {
				t.Errorf("misses (%d) != inserts (%d): every miss must insert",
					m.TableMisses, m.TableInserts)
			}
			if m.TableInserts < int64(an.Stats().TableSize) {
				t.Errorf("inserts (%d) < final table size (%d)",
					m.TableInserts, an.Stats().TableSize)
			}
			if m.HeapHighWater <= 0 {
				t.Errorf("HeapHighWater = %d, want > 0", m.HeapHighWater)
			}
			var workerSum int64
			for _, w := range m.Workers {
				workerSum += w.Steps
			}
			if len(m.Workers) > 0 && workerSum != exec {
				t.Errorf("worker steps sum to %d, Stats().Exec = %d", workerSum, exec)
			}
		})
	}
}

// TestWorklistParallelAgreement: on a call-free program the parallel
// engine at one worker has no speculative re-exploration, so its
// per-predicate step and run counts — not just the rendered result —
// match the worklist exactly.
func TestWorklistParallelAgreement(t *testing.T) {
	sys, err := Load(`
p(a, b).
p(c, d).
q([1, 2, 3]).
r(X, X).
`)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sys.Analyze(WithStrategy(Worklist))
	if err != nil {
		t.Fatal(err)
	}
	par, err := sys.Analyze(WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if par.Report() != wl.Report() {
		t.Fatalf("reports differ:\n%s\nvs\n%s", par.Report(), wl.Report())
	}
	if got, want := par.Stats().TableSize, wl.Stats().TableSize; got != want {
		t.Errorf("table size %d, worklist has %d", got, want)
	}
	type counts struct{ Steps, Runs int64 }
	perPred := func(m Metrics) map[string]counts {
		out := make(map[string]counts)
		for _, p := range m.Predicates {
			out[p.Pred] = counts{p.Steps, p.Runs}
		}
		return out
	}
	if got, want := perPred(par.Metrics()), perPred(wl.Metrics()); !reflect.DeepEqual(got, want) {
		t.Errorf("per-predicate metrics differ:\nparallel: %v\nworklist: %v", got, want)
	}
}

// TestOptionValidation: every invalid option value is rejected with
// ErrBadOption before any analysis runs.
func TestOptionValidation(t *testing.T) {
	sys, err := Load(observeProg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  AnalyzeOption
	}{
		{"negative depth", WithDepth(-1)},
		{"negative workers", WithParallelism(-2)},
		{"negative budget", WithMaxSteps(-1)},
		{"zero budget", WithMaxSteps(0)},
		{"unknown strategy", WithStrategy(Strategy(99))},
		{"unknown table kind", WithTable(TableKind(99))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := sys.Analyze(tc.opt); !errors.Is(err, ErrBadOption) {
				t.Fatalf("err = %v, want ErrBadOption", err)
			}
		})
	}
}

// TestSharedStepBudget: WithMaxSteps is one global pool. A budget below
// the program's step count fails with ErrAnalysisBudget at every worker
// count — under the old per-worker accounting, eight workers would have
// had 8x the allowance and succeeded.
func TestSharedStepBudget(t *testing.T) {
	sys, err := Load(observeProg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := sys.Analyze(WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	need := an.Stats().Exec
	small := need / 3
	if small <= 0 {
		t.Fatalf("fixture too small: parallel run took %d steps", need)
	}
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			_, err := sys.Analyze(WithParallelism(workers), WithMaxSteps(small))
			if !errors.Is(err, ErrAnalysisBudget) {
				t.Fatalf("budget %d with %d workers: err = %v, want ErrAnalysisBudget",
					small, workers, err)
			}
		})
	}
	// A sufficient budget succeeds and is respected exactly.
	big := 4 * need
	an, err = sys.Analyze(WithParallelism(4), WithMaxSteps(big))
	if err != nil {
		t.Fatalf("budget %d: %v", big, err)
	}
	if got := an.Stats().Exec; got > big {
		t.Errorf("Stats().Exec = %d exceeds budget %d", got, big)
	}
}

// countingTracer tallies events; safe for concurrent use as the Tracer
// contract requires under WithParallelism.
type countingTracer struct {
	mu          sync.Mutex
	instrs      int64
	table       map[TableEvent]int64
	enqueues    int64
	iterations  int
	workerStart int
	workerStop  int
}

func newCountingTracer() *countingTracer {
	return &countingTracer{table: make(map[TableEvent]int64)}
}

func (c *countingTracer) Instr(pred, opcode string) {
	c.mu.Lock()
	c.instrs++
	c.mu.Unlock()
}
func (c *countingTracer) Table(pred string, ev TableEvent) {
	c.mu.Lock()
	c.table[ev]++
	c.mu.Unlock()
}
func (c *countingTracer) Enqueue(pred string) {
	c.mu.Lock()
	c.enqueues++
	c.mu.Unlock()
}
func (c *countingTracer) Iteration(n int) {
	c.mu.Lock()
	c.iterations++
	c.mu.Unlock()
}
func (c *countingTracer) Worker(id int, start bool) {
	c.mu.Lock()
	if start {
		c.workerStart++
	} else {
		c.workerStop++
	}
	c.mu.Unlock()
}

// TestTracerEvents: the tracer sees exactly the events the metrics
// count — one Instr per abstract instruction, table events matching the
// counters — plus the strategy-specific lifecycle callbacks.
func TestTracerEvents(t *testing.T) {
	sys, err := Load(observeProg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("naive", func(t *testing.T) {
		tr := newCountingTracer()
		an, err := sys.Analyze(WithTracer(tr))
		if err != nil {
			t.Fatal(err)
		}
		if tr.instrs != an.Stats().Exec {
			t.Errorf("Instr events = %d, Stats().Exec = %d", tr.instrs, an.Stats().Exec)
		}
		if tr.iterations != an.Stats().Iterations {
			t.Errorf("Iteration events = %d, Stats().Iterations = %d",
				tr.iterations, an.Stats().Iterations)
		}
		m := an.Metrics()
		for _, chk := range []struct {
			ev   TableEvent
			want int64
		}{
			{TableHit, m.TableHits},
			{TableMiss, m.TableMisses},
			{TableInsert, m.TableInserts},
			{TableUpdate, m.TableUpdates},
		} {
			if got := tr.table[chk.ev]; got != chk.want {
				t.Errorf("%s events = %d, metrics count %d", chk.ev, got, chk.want)
			}
		}
	})

	t.Run("worklist", func(t *testing.T) {
		tr := newCountingTracer()
		an, err := sys.Analyze(WithStrategy(Worklist), WithTracer(tr))
		if err != nil {
			t.Fatal(err)
		}
		if tr.instrs != an.Stats().Exec {
			t.Errorf("Instr events = %d, Stats().Exec = %d", tr.instrs, an.Stats().Exec)
		}
		if got, want := tr.enqueues, an.Metrics().Enqueues; got != want {
			t.Errorf("Enqueue events = %d, metrics count %d", got, want)
		}
	})

	t.Run("parallel", func(t *testing.T) {
		const workers = 2
		tr := newCountingTracer()
		an, err := sys.Analyze(WithParallelism(workers), WithTracer(tr))
		if err != nil {
			t.Fatal(err)
		}
		if tr.instrs != an.Stats().Exec {
			t.Errorf("Instr events = %d, Stats().Exec = %d", tr.instrs, an.Stats().Exec)
		}
		if tr.workerStart != workers || tr.workerStop != workers {
			t.Errorf("worker events = %d starts / %d stops, want %d each",
				tr.workerStart, tr.workerStop, workers)
		}
	})
}

// TestDeprecatedOptionWrappers: the deprecated option forms are exact
// aliases of their WithTable/WithStrategy replacements.
func TestDeprecatedOptionWrappers(t *testing.T) {
	sys, err := Load(observeProg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		name                string
		deprecated, current AnalyzeOption
	}{
		{"WithHashTable", WithHashTable(), WithTable(TableHash)},
		{"WithWorklist", WithWorklist(), WithStrategy(Worklist)},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			old, err := sys.Analyze(p.deprecated)
			if err != nil {
				t.Fatal(err)
			}
			cur, err := sys.Analyze(p.current)
			if err != nil {
				t.Fatal(err)
			}
			if old.Report() != cur.Report() {
				t.Errorf("reports differ:\n%s\nvs\n%s", old.Report(), cur.Report())
			}
			if old.Marshal() != cur.Marshal() {
				t.Errorf("marshaled results differ")
			}
			if old.Stats() != cur.Stats() {
				t.Errorf("stats differ: %+v vs %+v", old.Stats(), cur.Stats())
			}
		})
	}
}

// TestSummaryTyped: the typed Summary agrees with the string accessors
// built on top of it and exposes per-argument structure.
func TestSummaryTyped(t *testing.T) {
	sys, err := Load(observeProg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := an.Summary("nosuch/3"); ok {
		t.Error("Summary of undefined predicate reported ok")
	}

	s, ok := an.Summary("nrev/2")
	if !ok {
		t.Fatal("no summary for nrev/2")
	}
	if !s.Succeeds {
		t.Error("nrev/2 marked non-succeeding")
	}
	if len(s.Args) != 2 {
		t.Fatalf("nrev/2 has %d arg summaries, want 2", len(s.Args))
	}
	if s.Args[0].Mode != ModeInGround {
		t.Errorf("nrev/2 arg 1 mode = %v, want %v (ground list in)", s.Args[0].Mode, ModeInGround)
	}
	if s.Args[1].Mode != ModeOutGround {
		t.Errorf("nrev/2 arg 2 mode = %v, want %v (free in, ground out)", s.Args[1].Mode, ModeOutGround)
	}
	if s.Args[0].CallType != TypeList {
		t.Errorf("nrev/2 arg 1 call type = %v, want %v", s.Args[0].CallType, TypeList)
	}
	if s.Args[1].CallType != TypeVar {
		t.Errorf("nrev/2 arg 2 call type = %v, want %v", s.Args[1].CallType, TypeVar)
	}

	// The string accessors are defined as views of the Summary.
	modes, ok := an.Modes("nrev/2")
	if !ok || modes != s.ModeString() {
		t.Errorf("Modes = %q (ok=%v), Summary.ModeString = %q", modes, ok, s.ModeString())
	}
	succ, ok := an.SuccessPattern("nrev/2")
	if !ok || succ != s.Success {
		t.Errorf("SuccessPattern = %q (ok=%v), Summary.Success = %q", succ, ok, s.Success)
	}
	if got := an.AliasPairs("nrev/2"); !reflect.DeepEqual(got, s.AliasPairs) {
		t.Errorf("AliasPairs = %v, Summary.AliasPairs = %v", got, s.AliasPairs)
	}
}
