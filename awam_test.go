package awam

import (
	"strings"
	"testing"
)

const quickProg = `
main :- nrev([1,2,3,4,5], R), check(R).
nrev([], []).
nrev([X|L], R) :- nrev(L, R1), app(R1, [X], R).
app([], L, L).
app([X|L1], L2, [X|L3]) :- app(L1, L2, L3).
check([5,4,3,2,1]).
`

func TestLoadAndRun(t *testing.T) {
	sys, err := Load(quickProg)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sys.RunMain()
	if err != nil || !ok {
		t.Fatalf("main: ok=%v err=%v", ok, err)
	}
	sol, err := sys.Run("nrev([a,b], R)")
	if err != nil {
		t.Fatal(err)
	}
	if !sol.OK || sol.Bindings["R"] != "[b, a]" {
		t.Fatalf("solution = %+v", sol)
	}
}

func TestSolutionEnumeration(t *testing.T) {
	sys, err := Load("color(red).\ncolor(green).\ncolor(blue).\n")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.Run("color(C)")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for sol.OK {
		got = append(got, sol.Bindings["C"])
		if ok, err := sol.Next(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	if strings.Join(got, ",") != "red,green,blue" {
		t.Fatalf("solutions = %v", got)
	}
}

func TestAnalyzeFacade(t *testing.T) {
	sys, err := Load(quickProg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	succ, ok := a.SuccessPattern("nrev/2")
	if !ok {
		t.Fatal("nrev/2 should have a success pattern")
	}
	if succ != "nrev(list(int), list(int))" {
		t.Fatalf("nrev success = %s", succ)
	}
	modes, ok := a.Modes("nrev/2")
	if !ok || !strings.HasPrefix(modes, "nrev(") {
		t.Fatalf("modes = %q", modes)
	}
	st := a.Stats()
	if st.Exec == 0 || st.TableSize == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if cps := a.CallingPatterns("app/3"); len(cps) == 0 {
		t.Fatal("app/3 should have calling patterns")
	}
	if !strings.Contains(a.Report(), "nrev(") {
		t.Fatal("report should mention nrev")
	}
}

func TestAnalyzeOptions(t *testing.T) {
	sys, err := Load(quickProg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Analyze(WithDepth(2), WithTable(TableHash), WithoutIndexing())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.SuccessPattern("nrev/2"); !ok {
		t.Fatal("analysis with options should still succeed")
	}
	b, err := sys.Analyze(WithEntry("app(list(g), list(g), var)"))
	if err != nil {
		t.Fatal(err)
	}
	succ, ok := b.SuccessPattern("app/3")
	if !ok || succ != "app(list(g), list(g), list(g))" {
		t.Fatalf("entry analysis = %q ok=%v", succ, ok)
	}
}

func TestOptimizeFacade(t *testing.T) {
	sys, err := Load(quickProg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	opt, report, err := sys.Optimize(a)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range report.Passes {
		total += p.Total
	}
	if total == 0 {
		t.Fatal("expected rewrites on ground list code")
	}
	ok, err := opt.RunMain()
	if err != nil || !ok {
		t.Fatalf("optimized main: ok=%v err=%v", ok, err)
	}
}

func TestTransformFacade(t *testing.T) {
	sys, err := Load("p(X) :- q(X).\nq(a).\n")
	if err != nil {
		t.Fatal(err)
	}
	tr := sys.Transform()
	for _, want := range []string{"p'(X1)", "updateET(p(X))", "lookupET", "q'(X)"} {
		if !strings.Contains(tr, want) {
			t.Fatalf("transform missing %q:\n%s", want, tr)
		}
	}
}

func TestHostedFacade(t *testing.T) {
	sys, err := Load(quickProg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.HostedAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) == 0 || h.Steps == 0 {
		t.Fatalf("hosted result = %+v", h)
	}
}

func TestDisasmAndPredicates(t *testing.T) {
	sys, err := Load("p(a).")
	if err != nil {
		t.Fatal(err)
	}
	if sys.CodeSize() == 0 {
		t.Fatal("code size 0")
	}
	if preds := sys.Predicates(); len(preds) != 1 || preds[0] != "p/1" {
		t.Fatalf("predicates = %v", preds)
	}
	if !strings.Contains(sys.Disasm(), "get_constant a, A1") {
		t.Fatal("disassembly missing")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("p(a"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Load("is(X, X)."); err == nil {
		t.Fatal("expected compile error for builtin redefinition")
	}
	if _, err := LoadFile("/nonexistent/path.pl"); err == nil {
		t.Fatal("expected file error")
	}
}

func TestControlConstructs(t *testing.T) {
	sys, err := Load(`
		max(X, Y, Z) :- (X >= Y -> Z = X ; Z = Y).
		classify(X, neg) :- X < 0.
		classify(X, nonneg) :- \+ X < 0.
		pick(X) :- (X = a ; X = b ; X = c).
	`)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := sys.Run("max(3, 7, M)")
	if err != nil || !sol.OK || sol.Bindings["M"] != "7" {
		t.Fatalf("max via if-then-else: %+v err=%v", sol, err)
	}
	sol2, err := sys.Run("classify(5, C)")
	if err != nil || !sol2.OK || sol2.Bindings["C"] != "nonneg" {
		t.Fatalf("negation: %+v err=%v", sol2, err)
	}
	sol3, err := sys.Run("pick(X)")
	if err != nil || !sol3.OK {
		t.Fatal(err)
	}
	var picks []string
	for sol3.OK {
		picks = append(picks, sol3.Bindings["X"])
		if ok, _ := sol3.Next(); !ok {
			break
		}
	}
	if strings.Join(picks, ",") != "a,b,c" {
		t.Fatalf("disjunction solutions = %v", picks)
	}
	// Control constructs in a query goal itself.
	sol4, err := sys.Run("(1 < 2 -> R = yes ; R = no)")
	if err != nil || !sol4.OK || sol4.Bindings["R"] != "yes" {
		t.Fatalf("query-level if-then-else: %+v err=%v", sol4, err)
	}
	// The analyzer handles the expanded predicates transparently.
	a, err := sys.Analyze(WithEntry("max(int, int, var)"))
	if err != nil {
		t.Fatal(err)
	}
	succ, ok := a.SuccessPattern("max/3")
	if !ok || !strings.HasPrefix(succ, "max(") {
		t.Fatalf("analysis of if-then-else predicate: %q ok=%v", succ, ok)
	}
}

func TestStripUnreachableFacade(t *testing.T) {
	sys, err := Load(`
		main :- alive.
		alive.
		zombie :- alive.
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Analyze(WithEntry("main"))
	if err != nil {
		t.Fatal(err)
	}
	stripped, removed, err := sys.StripUnreachable(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "zombie/0" {
		t.Fatalf("removed = %v", removed)
	}
	ok, err := stripped.RunMain()
	if err != nil || !ok {
		t.Fatalf("stripped main: ok=%v err=%v", ok, err)
	}
}

func TestWorklistOption(t *testing.T) {
	sys, err := Load(quickProg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sys.Analyze(WithStrategy(Worklist))
	if err != nil {
		t.Fatal(err)
	}
	sNaive, _ := naive.SuccessPattern("nrev/2")
	sWl, _ := wl.SuccessPattern("nrev/2")
	if sNaive != sWl {
		t.Fatalf("strategies disagree: %q vs %q", sNaive, sWl)
	}
	if wl.Stats().Exec >= naive.Stats().Exec {
		t.Fatalf("worklist should execute fewer instructions: %d vs %d",
			wl.Stats().Exec, naive.Stats().Exec)
	}
}

func TestDeterminacyAndSaveFacade(t *testing.T) {
	sys, err := Load(quickProg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	det := a.Determinacy()
	if !strings.Contains(det, "det") {
		t.Fatalf("determinacy report empty:\n%s", det)
	}
	saved := a.Marshal()
	back, err := sys.LoadAnalysis(saved)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := a.SuccessPattern("nrev/2")
	s2, _ := back.SuccessPattern("nrev/2")
	if s1 != s2 {
		t.Fatalf("reloaded analysis differs: %q vs %q", s1, s2)
	}
	// The reloaded analysis still drives the optimizer.
	opt, stats := sys.Specialize(back)
	if stats.Total == 0 {
		t.Fatal("reloaded analysis produced no specializations")
	}
	if ok, err := opt.RunMain(); err != nil || !ok {
		t.Fatalf("optimized-from-saved run: %v %v", ok, err)
	}
	if !strings.Contains(a.CallGraphDot(), "digraph callgraph") {
		t.Fatal("call graph missing")
	}
}
