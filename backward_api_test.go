package awam

import (
	"context"
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestBackwardFacade: the typed demand surface end to end — apiProg's
// app/3 destructures its first argument in one clause and passes it
// through in the other, rev/2 is a generator like nreverse.
func TestBackwardFacade(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.AnalyzeBackward(WithGoal("rev/2"))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := b.Demand("app/3")
	if !ok {
		t.Fatal("app/3 not in the demanded cone of rev/2")
	}
	if !d.Callable || d.Call != "app(nv, any, any)" {
		t.Errorf("app/3 demand = %+v", d)
	}
	if len(d.Args) != 3 || d.Args[0].Type != TypeNonVar || d.Args[1].Type != TypeAny {
		t.Errorf("app/3 args = %+v", d.Args)
	}
	if _, ok := b.Demand("use/1"); ok {
		t.Error("use/1 is outside rev/2's cone but was visited")
	}
	all := b.Demands()
	if len(all) != len(b.Predicates()) {
		t.Errorf("Demands() has %d entries, Predicates() %d", len(all), len(b.Predicates()))
	}
	st := b.Stats()
	if st.VisitedSCCs == 0 || st.TotalSCCs < st.VisitedSCCs || st.Steps == 0 {
		t.Errorf("stats = %+v", st)
	}
	if b.Marshal() == "" || b.System() != sys {
		t.Error("Marshal or System broken")
	}
}

// TestBackwardOptionErrors pins the option-validation failures, exact
// text included, mirroring TestOptionValidationExactErrors.
func TestBackwardOptionErrors(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []BackwardOption
		want string
	}{
		{"negative depth", []BackwardOption{WithBackwardDepth(-1)},
			"awam: invalid analysis option: negative depth -1"},
		{"zero budget", []BackwardOption{WithBackwardMaxSteps(0)},
			"awam: invalid analysis option: nonpositive step budget 0"},
		{"bad indicator", []BackwardOption{WithGoal("rev")},
			`awam: invalid analysis option: goal "rev" is not a name/arity indicator`},
		{"bad arity", []BackwardOption{WithGoal("rev/x")},
			`awam: invalid analysis option: goal "rev/x" has a bad arity`},
		{"unknown goal", []BackwardOption{WithGoal("nosuch/9")},
			"awam: invalid analysis option: backward: unknown goal predicate nosuch/9"},
	}
	for _, c := range cases {
		_, err := sys.AnalyzeBackward(c.opts...)
		if !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", c.name, err)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("%s: err = %q, want %q", c.name, err.Error(), c.want)
		}
	}
	// A failed call must not poison the system.
	if _, err := sys.AnalyzeBackward(); err != nil {
		t.Fatalf("backward analysis after failed option validation: %v", err)
	}
}

// TestBackwardBudgetAndCancel: resource failures surface as the same
// typed sentinels the forward analysis uses.
func TestBackwardBudgetAndCancel(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AnalyzeBackward(WithBackwardMaxSteps(1)); !errors.Is(err, ErrAnalysisBudget) {
		t.Errorf("tiny budget: err = %v, want ErrAnalysisBudget", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.AnalyzeBackwardContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled: err = %v, want ErrCanceled", err)
	}
}

// TestBackwardWarmByDefault: a repeat query on the same System hits the
// private store — zero components re-executed, byte-identical demands.
func TestBackwardWarmByDefault(t *testing.T) {
	sys, err := Load(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sys.AnalyzeBackward()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys.AnalyzeBackward()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats().ExecutedSCCs != 0 {
		t.Errorf("warm repeat executed %d components", warm.Stats().ExecutedSCCs)
	}
	if cold.Marshal() != warm.Marshal() {
		t.Error("cold and warm demand sets differ")
	}
}

// TestBackwardSharedStore: two independently loaded Systems share
// demands through one summary store, like forward analyses share
// summaries through WithSummaryCache.
func TestBackwardSharedStore(t *testing.T) {
	store, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	sys1, _ := Load(apiProg)
	cold, err := sys1.AnalyzeBackward(WithBackwardStore(store))
	if err != nil {
		t.Fatal(err)
	}
	sys2, _ := Load(apiProg)
	warm, err := sys2.AnalyzeBackward(WithBackwardStore(store))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats().ExecutedSCCs != 0 || warm.Stats().ReusedSCCs != cold.Stats().ExecutedSCCs {
		t.Errorf("shared store: cold=%+v warm=%+v", cold.Stats(), warm.Stats())
	}
	if cold.Marshal() != warm.Marshal() {
		t.Error("demand sets differ across the shared store")
	}
	// The backward records live under their own format salt: a forward
	// analysis against the same store must not be satisfied by them.
	if _, err := sys2.Analyze(WithSummaryCache(store)); err != nil {
		t.Fatalf("forward analysis over a store holding backward records: %v", err)
	}
}

// TestBackwardOptionsAreValueOptions is a lint over backward_api.go:
// every BackwardOption constructor must take at least one parameter and
// none may be a bare boolean flag — the facade convention is typed
// value options (WithTable(TableHash), not WithHashTable()), and the
// backward surface was born after that convention, so it gets no
// grandfathered flag options at all.
func TestBackwardOptionsAreValueOptions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "backward_api.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv != nil || !fd.Name.IsExported() {
			continue
		}
		res := fd.Type.Results
		if res == nil || len(res.List) != 1 {
			continue
		}
		id, ok := res.List[0].Type.(*ast.Ident)
		if !ok || id.Name != "BackwardOption" {
			continue
		}
		if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
			t.Errorf("%s: BackwardOption constructor with no parameters (flag-style option)", fd.Name.Name)
			continue
		}
		for _, p := range fd.Type.Params.List {
			if pid, ok := p.Type.(*ast.Ident); ok && pid.Name == "bool" {
				t.Errorf("%s: BackwardOption constructor with a bool parameter; use a typed value option", fd.Name.Name)
			}
		}
	}
}
