// Package api declares the request and response types of the awamd
// analysis service, importable by clients. The daemon serves them under
// the versioned prefix /v1 (the unversioned routes remain as aliases):
//
//	POST /v1/analyze    AnalyzeRequest   -> AnalyzeResponse
//	POST /v1/backward   BackwardRequest  -> BackwardResponse
//	POST /v1/optimize   OptimizeRequest  -> OptimizeResponse
//	POST /v1/store/has  StoreHasRequest  -> StoreHasResponse
//	POST /v1/store/get  StoreGetRequest  -> StoreGetResponse
//	POST /v1/store/put  StorePutRequest  -> StorePutResponse
//	GET  /v1/healthz    -> {"status":"ok"}
//	GET  /v1/metrics    -> Prometheus text exposition
//
// The /v1/store routes are the summary-fabric protocol: batched
// content-addressed record exchange between daemons (a peer's store
// configured with awam.WithRemote speaks it as a client). Batches are
// capped at MaxStoreBatch entries; larger requests fail with a
// batch_too_large ErrorBody.
//
// Every non-2xx response carries an ErrorBody.
package api

import "awam"

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	// Source is the Prolog program text (required).
	Source string `json:"source"`
	// TimeoutMS bounds the analysis wall time; 0 selects the server
	// default, larger values are clamped to the server maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxSteps bounds the abstract instructions executed; 0 means
	// unbounded (up to the server clamp).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Depth overrides the term-depth restriction; 0 keeps the default.
	Depth int `json:"depth,omitempty"`
}

// AnalysisStats are the run statistics of one analysis.
type AnalysisStats struct {
	Exec       int64 `json:"exec"`
	Iterations int   `json:"iterations"`
	TableSize  int   `json:"table_size"`
}

// Incremental is the summary cache's share of one analysis.
type Incremental struct {
	SCCs         int   `json:"sccs"`
	WarmSCCs     int   `json:"warm_sccs"`
	WarmPatterns int64 `json:"warm_patterns"`
	ColdPatterns int64 `json:"cold_patterns"`
}

// Cache is the shared summary store's cumulative state. The remote_*
// fields describe the daemon's own remote tier (zero unless it was
// started as a fabric member pointing at a peer); degraded is true
// while that tier's circuit breaker is open.
type Cache struct {
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Evictions        int64 `json:"evictions"`
	DiskLoads        int64 `json:"disk_loads"`
	RemoteLoads      int64 `json:"remote_loads,omitempty"`
	RemoteMisses     int64 `json:"remote_misses,omitempty"`
	RemotePuts       int64 `json:"remote_puts,omitempty"`
	RemoteRoundTrips int64 `json:"remote_round_trips,omitempty"`
	RemoteErrors     int64 `json:"remote_errors,omitempty"`
	Degraded         bool  `json:"degraded,omitempty"`
	Entries          int   `json:"entries"`
	Bytes            int64 `json:"bytes"`
}

// AnalyzeResponse is the POST /v1/analyze success body.
type AnalyzeResponse struct {
	// Predicates maps "name/arity" to its analysis summary.
	Predicates map[string]awam.Summary `json:"predicates"`
	// Stats are the run statistics of the analysis that produced this
	// result (for coalesced requests: the shared analysis).
	Stats AnalysisStats `json:"stats"`
	// Incremental is the cache's share of this analysis.
	Incremental *Incremental `json:"incremental,omitempty"`
	// Cache is the shared summary cache's cumulative state.
	Cache Cache `json:"cache"`
	// ElapsedMS is the analysis wall time; Coalesced marks responses
	// served by joining an identical in-flight request.
	ElapsedMS int64 `json:"elapsed_ms"`
	Coalesced bool  `json:"coalesced,omitempty"`
}

// BackwardRequest is the POST /v1/backward body: a demand query — for
// each goal predicate and everything it transitively demands, infer the
// weakest call pattern under which success cannot be refuted and every
// builtin is error-free.
type BackwardRequest struct {
	// Source is the Prolog program text (required).
	Source string `json:"source"`
	// Goals are the demand entry points as "name/arity" indicators;
	// empty roots the query at main/0 when the program defines it, else
	// at every source predicate.
	Goals []string `json:"goals,omitempty"`
	// TimeoutMS bounds the analysis wall time; 0 selects the server
	// default, larger values are clamped to the server maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxSteps bounds the backward transfer steps; 0 means the engine
	// default (up to the server clamp).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Depth overrides the widening depth bound; 0 keeps the default.
	Depth int `json:"depth,omitempty"`
}

// BackwardStats are the run statistics of one backward analysis.
type BackwardStats struct {
	Steps        int64 `json:"steps"`
	Iterations   int   `json:"iterations"`
	VisitedSCCs  int   `json:"visited_sccs"`
	TotalSCCs    int   `json:"total_sccs"`
	ReusedSCCs   int   `json:"reused_sccs"`
	ExecutedSCCs int   `json:"executed_sccs"`
	CondenseMS   int64 `json:"condense_ms"`
	ForwardMS    int64 `json:"forward_ms"`
	SolveMS      int64 `json:"solve_ms"`
}

// BackwardResponse is the POST /v1/backward success body.
type BackwardResponse struct {
	// Demands maps each visited "name/arity" to its weakest demand.
	Demands map[string]awam.Demand `json:"demands"`
	// Stats are the run statistics (for coalesced requests: the shared
	// analysis).
	Stats BackwardStats `json:"stats"`
	// Cache is the shared summary cache's cumulative state; backward
	// records share its tiers under their own format salt.
	Cache Cache `json:"cache"`
	// ElapsedMS is the analysis wall time; Coalesced marks responses
	// served by joining an identical in-flight request.
	ElapsedMS int64 `json:"elapsed_ms"`
	Coalesced bool  `json:"coalesced,omitempty"`
}

// OptimizeRequest is the POST /v1/optimize body: analyze Source, then
// run the differentially-gated optimizer pipeline over it.
type OptimizeRequest struct {
	// Source is the Prolog program text (required).
	Source string `json:"source"`
	// Passes selects and orders the optimizer passes; empty runs every
	// registered pass in canonical order.
	Passes []string `json:"passes,omitempty"`
	// GateGoals adds goals to the differential gate (main/0 is gated
	// automatically when the program defines it).
	GateGoals []string `json:"gate_goals,omitempty"`
	// TimeoutMS bounds the analysis wall time, as in AnalyzeRequest.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MeasureRuns is the number of timed runs per speedup measurement;
	// 0 selects the server default.
	MeasureRuns int `json:"measure_runs,omitempty"`
	// Disasm requests the optimized module's code listing in the
	// response.
	Disasm bool `json:"disasm,omitempty"`
}

// OptimizeResponse is the POST /v1/optimize success body.
type OptimizeResponse struct {
	// Report is the optimizer's account of what changed: per-pass
	// rewrite counts and instruction/clause deltas, the gate goals, and
	// the measured machine-runtime speedup.
	Report *awam.OptimizeReport `json:"report"`
	// Disasm is the optimized module's code listing, when requested.
	Disasm string `json:"disasm,omitempty"`
	// ElapsedMS is the combined analyze+optimize wall time.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// MaxStoreBatch is the most fingerprints (or records) one store
// round trip may carry; longer batches fail with batch_too_large.
const MaxStoreBatch = 256

// StoreHasRequest is the POST /v1/store/has body: which of these
// records does the daemon hold locally?
type StoreHasRequest struct {
	// Fingerprints are content addresses (lowercase hex, as produced by
	// the incremental engine's component hashing).
	Fingerprints []string `json:"fingerprints"`
}

// StoreHasResponse answers a StoreHasRequest positionally: Present[i]
// reports Fingerprints[i]. Malformed fingerprints are reported absent.
type StoreHasResponse struct {
	Present []bool `json:"present"`
}

// StoreGetRequest is the POST /v1/store/get body: fetch a batch of
// records by fingerprint.
type StoreGetRequest struct {
	Fingerprints []string `json:"fingerprints"`
}

// StoreRecord is one content-addressed record on the wire. Data
// travels base64-encoded (encoding/json's []byte convention).
type StoreRecord struct {
	Fingerprint string `json:"fingerprint"`
	Data        []byte `json:"data"`
}

// StoreGetResponse carries the subset of requested records the daemon
// holds; records it lacks are simply absent (a fetch is never an
// error).
type StoreGetResponse struct {
	Records []StoreRecord `json:"records"`
}

// StorePutRequest is the POST /v1/store/put body: push a batch of
// records into the daemon's local tiers.
type StorePutRequest struct {
	Records []StoreRecord `json:"records"`
}

// StorePutResponse reports how many pushed records were accepted
// (malformed fingerprints and empty or oversized records are skipped,
// not failed).
type StorePutResponse struct {
	Stored int `json:"stored"`
}

// Error is the payload of an ErrorBody.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody is every non-2xx response: {"error":{"code","message"}}.
type ErrorBody struct {
	Error Error `json:"error"`
}
