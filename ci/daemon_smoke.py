#!/usr/bin/env python3
"""End-to-end smoke for awamd: POST the qsort benchmark to a running
daemon and assert its per-predicate summaries equal a batch
`awam analyze -worklist` run on the same source, then POST the same
source to /v1/backward and assert the demands equal a batch
`awam backward` run — and that an immediately repeated demand query is
served warm from the daemon's store (zero components re-executed).

Usage: daemon_smoke.py http://127.0.0.1:8347
Run from the repository root (invokes `go run ./cmd/awam`).
"""
import json
import re
import subprocess
import sys
import tempfile
import urllib.request

QSORT = """
qsort([X|L], R, R0) :-
\tpartition(L, X, L1, L2),
\tqsort(L2, R1, R0),
\tqsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).
main :- qsort([3,1,2], _, []).
"""


def daemon_modes(base):
    body = json.dumps({"source": QSORT, "timeout_ms": 5000}).encode()
    req = urllib.request.Request(
        base + "/analyze", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        out = json.load(resp)
    preds = out.get("predicates")
    if not preds:
        sys.exit(f"daemon returned no predicates: {out}")
    modes = {}
    for pred, s in preds.items():
        if not s.get("Succeeds"):
            continue
        name = pred.split("/")[0]
        args = ", ".join(a["Mode"] for a in s.get("Args") or [])
        modes[pred] = f"{name}({args})" if args else name
    return modes


def batch_modes():
    with tempfile.NamedTemporaryFile("w", suffix=".pl", delete=False) as f:
        f.write(QSORT)
        path = f.name
    text = subprocess.run(
        ["go", "run", "./cmd/awam", "analyze", "-worklist", path],
        check=True, capture_output=True, text=True,
    ).stdout
    # "mode p(+g, -g)" lines; modes are flat, so commas count arguments.
    out = {}
    for line in text.splitlines():
        m = re.match(r"^mode\s+([a-z][A-Za-z0-9_]*)(\((.*)\))?$", line.strip())
        if not m:
            continue
        name, args = m.group(1), m.group(3)
        arity = len(args.split(",")) if args else 0
        pred = f"{name}/{arity}"
        rendered = f"{name}({args})" if args else name
        if out.setdefault(pred, rendered) != rendered:
            sys.exit(f"batch analyze reports conflicting modes for {pred}")
    if not out:
        sys.exit(f"could not parse batch analyze output:\n{text}")
    return out


def daemon_demands(base):
    body = json.dumps(
        {"source": QSORT, "goals": ["qsort/3"], "timeout_ms": 5000}
    ).encode()
    req = urllib.request.Request(
        base + "/v1/backward", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        out = json.load(resp)
    demands = out.get("demands")
    if not demands:
        sys.exit(f"daemon returned no demands: {out}")
    calls = {p: d["Call"] for p, d in demands.items() if d.get("Callable")}
    return calls, out.get("stats") or {}


def batch_demands():
    with tempfile.NamedTemporaryFile("w", suffix=".pl", delete=False) as f:
        f.write(QSORT)
        path = f.name
    text = subprocess.run(
        ["go", "run", "./cmd/awam", "backward", "-goal", "qsort/3", path],
        check=True, capture_output=True, text=True,
    ).stdout
    # "demand qsort/3 qsort(nv, any, any)" lines; "bottom" marks no
    # safe call (skipped, like non-Callable daemon demands).
    out = {}
    for line in text.splitlines():
        m = re.match(r"^demand\s+(\S+)\s+(.*)$", line.strip())
        if not m or m.group(2) == "bottom":
            continue
        out[m.group(1)] = m.group(2)
    if not out:
        sys.exit(f"could not parse batch backward output:\n{text}")
    return out


def check_backward(base):
    got, cold = daemon_demands(base)
    want = batch_demands()
    if "qsort/3" not in want or "partition/4" not in want:
        sys.exit(f"batch backward output missing expected predicates: {sorted(want)}")
    if got != want:
        sys.exit(f"daemon demands {got} != batch demands {want}")
    if cold.get("executed_sccs", 0) <= 0:
        sys.exit(f"cold demand query executed no components: {cold}")
    # The repeat query must be served from the daemon's shared store.
    regot, warm = daemon_demands(base)
    if regot != got:
        sys.exit(f"warm demands {regot} != cold demands {got}")
    if warm.get("executed_sccs", -1) != 0:
        sys.exit(f"warm demand query re-executed components: {warm}")
    print(f"daemon demands match batch backward for {len(want)} predicates, "
          f"warm repeat re-executed 0/{cold['executed_sccs']} components: OK")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    got = daemon_modes(sys.argv[1])
    want = batch_modes()
    missing = {"qsort/3", "partition/4"} - set(want)
    if missing:
        sys.exit(f"batch analyze output missing expected predicates: {missing}")
    for pred, mode in want.items():
        if pred not in got:
            sys.exit(f"daemon response missing {pred}; has {sorted(got)}")
        if got[pred] != mode:
            sys.exit(f"{pred}: daemon mode {got[pred]!r} != batch {mode!r}")
    if "main/0" not in got:
        sys.exit(f"daemon response missing main/0; has {sorted(got)}")
    print(f"daemon modes match batch analyze for {len(want)} predicates: OK")
    check_backward(sys.argv[1])


if __name__ == "__main__":
    main()
