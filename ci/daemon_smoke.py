#!/usr/bin/env python3
"""End-to-end smoke for awamd: POST the qsort benchmark to a running
daemon and assert its per-predicate summaries equal a batch
`awam analyze -worklist` run on the same source.

Usage: daemon_smoke.py http://127.0.0.1:8347
Run from the repository root (invokes `go run ./cmd/awam`).
"""
import json
import re
import subprocess
import sys
import tempfile
import urllib.request

QSORT = """
qsort([X|L], R, R0) :-
\tpartition(L, X, L1, L2),
\tqsort(L2, R1, R0),
\tqsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).
main :- qsort([3,1,2], _, []).
"""


def daemon_modes(base):
    body = json.dumps({"source": QSORT, "timeout_ms": 5000}).encode()
    req = urllib.request.Request(
        base + "/analyze", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        out = json.load(resp)
    preds = out.get("predicates")
    if not preds:
        sys.exit(f"daemon returned no predicates: {out}")
    modes = {}
    for pred, s in preds.items():
        if not s.get("Succeeds"):
            continue
        name = pred.split("/")[0]
        args = ", ".join(a["Mode"] for a in s.get("Args") or [])
        modes[pred] = f"{name}({args})" if args else name
    return modes


def batch_modes():
    with tempfile.NamedTemporaryFile("w", suffix=".pl", delete=False) as f:
        f.write(QSORT)
        path = f.name
    text = subprocess.run(
        ["go", "run", "./cmd/awam", "analyze", "-worklist", path],
        check=True, capture_output=True, text=True,
    ).stdout
    # "mode p(+g, -g)" lines; modes are flat, so commas count arguments.
    out = {}
    for line in text.splitlines():
        m = re.match(r"^mode\s+([a-z][A-Za-z0-9_]*)(\((.*)\))?$", line.strip())
        if not m:
            continue
        name, args = m.group(1), m.group(3)
        arity = len(args.split(",")) if args else 0
        pred = f"{name}/{arity}"
        rendered = f"{name}({args})" if args else name
        if out.setdefault(pred, rendered) != rendered:
            sys.exit(f"batch analyze reports conflicting modes for {pred}")
    if not out:
        sys.exit(f"could not parse batch analyze output:\n{text}")
    return out


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    got = daemon_modes(sys.argv[1])
    want = batch_modes()
    missing = {"qsort/3", "partition/4"} - set(want)
    if missing:
        sys.exit(f"batch analyze output missing expected predicates: {missing}")
    for pred, mode in want.items():
        if pred not in got:
            sys.exit(f"daemon response missing {pred}; has {sorted(got)}")
        if got[pred] != mode:
            sys.exit(f"{pred}: daemon mode {got[pred]!r} != batch {mode!r}")
    if "main/0" not in got:
        sys.exit(f"daemon response missing main/0; has {sorted(got)}")
    print(f"daemon modes match batch analyze for {len(want)} predicates: OK")


if __name__ == "__main__":
    main()
