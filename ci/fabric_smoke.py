#!/usr/bin/env python3
"""End-to-end smoke for the summary fabric: daemon A analyzes the
wide_512 workload cold; daemon B — cold local tiers, started with
-remote pointed at A — analyzes the same source and must warm-start
over A's /v1/store routes with byte-identical predicate summaries.

Usage: fabric_smoke.py
Run from the repository root (builds and starts two awamd processes on
loopback ports).
"""
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

TIMEOUT_MS = 45000


def free_port():
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def wait_healthy(base, proc, deadline=30):
    start = time.time()
    while time.time() - start < deadline:
        if proc.poll() is not None:
            sys.exit(f"daemon at {base} exited early with {proc.returncode}")
        try:
            with urllib.request.urlopen(base + "/v1/healthz", timeout=2) as resp:
                if resp.status == 200:
                    return
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    sys.exit(f"daemon at {base} never became healthy")


def analyze(base, source):
    body = json.dumps({"source": source, "timeout_ms": TIMEOUT_MS}).encode()
    req = urllib.request.Request(
        base + "/v1/analyze", data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=TIMEOUT_MS / 1000 + 15) as resp:
        return json.load(resp)


def main():
    source = subprocess.run(
        ["go", "run", "./cmd/benchtab", "-dump-wide", "512"],
        check=True, capture_output=True, text=True,
    ).stdout
    if "p511_rev" not in source:
        sys.exit("benchtab -dump-wide 512 produced an unexpected workload")

    subprocess.run(["go", "build", "-o", "/tmp/awamd_fabric", "./cmd/awamd"], check=True)

    port_a, port_b = free_port(), free_port()
    base_a = f"http://127.0.0.1:{port_a}"
    base_b = f"http://127.0.0.1:{port_b}"
    max_body = str(64 << 20)  # wide_512 source is several MB of clauses

    daemons = []
    try:
        a = subprocess.Popen(
            ["/tmp/awamd_fabric", "-addr", f"127.0.0.1:{port_a}",
             "-max-timeout", "60s", "-max-body", max_body])
        daemons.append(a)
        wait_healthy(base_a, a)

        b = subprocess.Popen(
            ["/tmp/awamd_fabric", "-addr", f"127.0.0.1:{port_b}",
             "-remote", base_a, "-max-timeout", "60s", "-max-body", max_body])
        daemons.append(b)
        wait_healthy(base_b, b)

        out_a = analyze(base_a, source)
        inc_a = out_a.get("incremental") or {}
        if inc_a.get("warm_sccs", -1) != 0:
            sys.exit(f"daemon A's first run should be fully cold: {inc_a}")
        if not out_a.get("predicates"):
            sys.exit("daemon A returned no predicates")

        out_b = analyze(base_b, source)
        inc_b = out_b.get("incremental") or {}
        cache_b = out_b.get("cache") or {}

        if out_a["predicates"] != out_b["predicates"]:
            sys.exit("fabric-served analysis differs from daemon A's")
        sccs, warm = inc_b.get("sccs", 0), inc_b.get("warm_sccs", 0)
        if sccs == 0 or warm == 0:
            sys.exit(f"daemon B warm-start hit rate is zero: {inc_b}")
        if cache_b.get("remote_loads", 0) == 0:
            sys.exit(f"daemon B reports no remote tier traffic: {cache_b}")
        if cache_b.get("degraded"):
            sys.exit(f"daemon B degraded during a healthy run: {cache_b}")
        print(
            f"fabric warm start OK: daemon B served {warm}/{sccs} components "
            f"via {cache_b.get('remote_loads')} remote loads, "
            f"{len(out_b['predicates'])} identical predicate summaries"
        )
    finally:
        for d in daemons:
            if d.poll() is None:
                d.send_signal(signal.SIGTERM)
        for d in daemons:
            try:
                d.wait(timeout=20)
            except subprocess.TimeoutExpired:
                d.kill()


if __name__ == "__main__":
    main()
